"""One experiment per figure / in-text result of the paper's evaluation.

Every function returns an :class:`ExperimentReport` whose rows mirror the
series of the corresponding figure.  ``workloads=None`` runs the full suite;
passing an explicit subset (as the benchmarks do) keeps runtimes bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.critpath import analyze_critical_path
from repro.analysis.report import format_percent, format_table
from repro.core.config import RenoConfig
from repro.functional.simulator import FunctionalSimulator
from repro.functional.trace import mix_statistics
from repro.harness.runner import SPEEDUP_BASELINE, run_matrix
from repro.uarch.config import MachineConfig
from repro.workloads.base import Workload
from repro.workloads.suites import suite_by_name


@dataclass
class ExperimentReport:
    """A regenerated table/figure: labelled rows plus the raw data."""

    name: str
    description: str
    headers: list[str]
    rows: list[list[str]]
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return format_table(self.headers, self.rows, title=f"{self.name}: {self.description}")


def _workload_list(suite: str, workloads: list[str] | None) -> list[str | Workload]:
    if workloads is not None:
        return list(workloads)
    return [workload.name for workload in suite_by_name(suite)]


def _label(name: str) -> str:
    from repro.workloads.base import get_workload

    return get_workload(name).label


_RENO_STACK = {
    SPEEDUP_BASELINE: None,
    "ME": RenoConfig.reno_me(),
    "CF+ME": RenoConfig.reno_cf_me(),
    "RENO": RenoConfig.reno_default(),
}


# ---------------------------------------------------------------------------
# Figure 8: elimination rates and speedups, 4- and 6-wide
# ---------------------------------------------------------------------------


def figure8_elimination_and_speedup(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
    jobs: int | None = None,
    cache=None,
) -> ExperimentReport:
    """Fraction of dynamic instructions eliminated (ME/CF/RA+CSE stack) and
    the speedup of full RENO over the baseline, on 4- and 6-wide machines."""
    names = _workload_list(suite, workloads)
    machines = {"4wide": MachineConfig.default_4wide(), "6wide": MachineConfig.default_6wide()}
    renos = {SPEEDUP_BASELINE: None, "RENO": RenoConfig.reno_default()}
    matrix = run_matrix(names, machines, renos, scale=scale, jobs=jobs, cache=cache)

    headers = ["benchmark", "ME%", "CF%", "RA+CSE%", "total%",
               "speedup 4w", "speedup 6w"]
    rows = []
    data = {}
    sums = [0.0] * 6
    for name in matrix.workloads:
        stats4 = matrix.get(name, "4wide", "RENO").stats
        speedup4 = matrix.speedup(name, "4wide", "RENO") - 1
        speedup6 = matrix.speedup(name, "6wide", "RENO") - 1
        values = [stats4.move_elimination_rate, stats4.fold_rate, stats4.cse_ra_rate,
                  stats4.elimination_rate, speedup4, speedup6]
        data[name] = dict(zip(["me", "cf", "cse_ra", "total", "speedup4", "speedup6"], values))
        sums = [total + value for total, value in zip(sums, values)]
        rows.append([_label(name)] + [format_percent(v) for v in values[:4]]
                    + [format_percent(v, signed=True) for v in values[4:]])
    count = len(matrix.workloads) or 1
    averages = [total / count for total in sums]
    rows.append(["amean"] + [format_percent(v) for v in averages[:4]]
                + [format_percent(v, signed=True) for v in averages[4:]])
    data["amean"] = dict(zip(["me", "cf", "cse_ra", "total", "speedup4", "speedup6"], averages))
    return ExperimentReport(
        name=f"Figure 8 ({suite})",
        description="instructions eliminated/folded and RENO speedups (4- and 6-wide)",
        headers=headers, rows=rows, data=data,
    )


# ---------------------------------------------------------------------------
# Figure 9: critical-path breakdown
# ---------------------------------------------------------------------------


def figure9_critical_path(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
    jobs: int | None = None,
    cache=None,
) -> ExperimentReport:
    """Critical-path bucket shares for baseline, CF+ME, and full RENO."""
    names = _workload_list(suite, workloads)
    machines = {"4wide": MachineConfig.default_4wide()}
    renos = {SPEEDUP_BASELINE: None, "CF+ME": RenoConfig.reno_cf_me(),
             "RENO": RenoConfig.reno_default()}
    matrix = run_matrix(names, machines, renos, scale=scale, collect_timing=True,
                        jobs=jobs, cache=cache)

    headers = ["benchmark", "config", "fetch", "alu", "load", "mem", "commit"]
    rows = []
    data = {}
    for name in matrix.workloads:
        for reno_label in renos:
            outcome = matrix.get(name, "4wide", reno_label)
            breakdown = analyze_critical_path(outcome.timing.timing_records or [])
            fractions = breakdown.fractions()
            data[(name, reno_label)] = fractions
            rows.append([
                _label(name), reno_label,
                format_percent(fractions["fetch"]),
                format_percent(fractions["alu_exec"]),
                format_percent(fractions["load_exec"]),
                format_percent(fractions["load_mem"]),
                format_percent(fractions["commit"]),
            ])
    return ExperimentReport(
        name=f"Figure 9 ({suite})",
        description="critical-path breakdown: baseline vs CF+ME vs full RENO",
        headers=headers, rows=rows, data=data,
    )


# ---------------------------------------------------------------------------
# Figure 10: division of labor between RENO_CF and RENO_CSE+RA
# ---------------------------------------------------------------------------


def figure10_division_of_labor(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
    jobs: int | None = None,
    cache=None,
) -> ExperimentReport:
    """Speedups of RENO, RENO+full IT, full integration only, loads-only
    integration (the four bars of Figure 10)."""
    names = _workload_list(suite, workloads)
    machines = {"4wide": MachineConfig.default_4wide()}
    renos = {
        SPEEDUP_BASELINE: None,
        "RENO": RenoConfig.reno_default(),
        "RENO+FullInteg": RenoConfig.reno_full_integration(),
        "FullInteg": RenoConfig.integration_only_full(),
        "LoadsInteg": RenoConfig.integration_only_loads(),
    }
    matrix = run_matrix(names, machines, renos, scale=scale, jobs=jobs, cache=cache)
    config_labels = [label for label in renos if label != SPEEDUP_BASELINE]
    headers = ["benchmark"] + [f"{label} speedup" for label in config_labels]
    rows = []
    data = {}
    sums = {label: 0.0 for label in config_labels}
    for name in matrix.workloads:
        row = [_label(name)]
        for label in config_labels:
            speedup = matrix.speedup(name, "4wide", label) - 1
            sums[label] += speedup
            data[(name, label)] = speedup
            row.append(format_percent(speedup, signed=True))
        rows.append(row)
    count = len(matrix.workloads) or 1
    rows.append(["avg"] + [format_percent(sums[label] / count, signed=True)
                           for label in config_labels])
    for label in config_labels:
        data[("avg", label)] = sums[label] / count
    return ExperimentReport(
        name=f"Figure 10 ({suite})",
        description="cooperation between RENO_CF and RENO_CSE+RA",
        headers=headers, rows=rows, data=data,
    )


# ---------------------------------------------------------------------------
# Figure 11: compensating for smaller register files / narrower issue
# ---------------------------------------------------------------------------


def figure11_register_file(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
    register_sizes: tuple[int, ...] = (96, 112, 128, 160),
    jobs: int | None = None,
    cache=None,
) -> ExperimentReport:
    """Relative performance at several register-file sizes for BASE, CF+ME,
    RA+CSE (full RENO); 100% = baseline machine with 160 registers."""
    names = _workload_list(suite, workloads)
    machines = {f"p{size}": MachineConfig.default_4wide().with_registers(size)
                for size in register_sizes}
    renos = dict(_RENO_STACK)
    matrix = run_matrix(names, machines, renos, scale=scale, jobs=jobs, cache=cache)
    reference_machine = f"p{max(register_sizes)}"

    headers = ["config"] + [f"p{size}" for size in register_sizes]
    rows = []
    data = {}
    for reno_label in (SPEEDUP_BASELINE, "CF+ME", "RENO"):
        row = [reno_label]
        for size in register_sizes:
            relative = 0.0
            for name in matrix.workloads:
                reference = matrix.get(name, reference_machine, SPEEDUP_BASELINE).cycles
                target = matrix.get(name, f"p{size}", reno_label).cycles
                relative += reference / target
            relative /= len(matrix.workloads) or 1
            data[(reno_label, size)] = relative
            row.append(format_percent(relative))
        rows.append(row)
    return ExperimentReport(
        name=f"Figure 11 top ({suite})",
        description="RENO compensating for physical register file size",
        headers=headers, rows=rows, data=data,
    )


def figure11_issue_width(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
    widths: tuple[tuple[int, int], ...] = ((2, 2), (2, 3), (3, 4)),
    jobs: int | None = None,
    cache=None,
) -> ExperimentReport:
    """Relative performance at i2t2 / i2t3 / i3t4 issue widths; 100% = the
    baseline i3t4 machine without RENO."""
    names = _workload_list(suite, workloads)
    machines = {f"i{i}t{t}": MachineConfig.default_4wide().with_issue(i, t)
                for i, t in widths}
    renos = dict(_RENO_STACK)
    matrix = run_matrix(names, machines, renos, scale=scale, jobs=jobs, cache=cache)
    reference_machine = f"i{widths[-1][0]}t{widths[-1][1]}"

    headers = ["config"] + list(machines)
    rows = []
    data = {}
    for reno_label in (SPEEDUP_BASELINE, "CF+ME", "RENO"):
        row = [reno_label]
        for machine_label in machines:
            relative = 0.0
            for name in matrix.workloads:
                reference = matrix.get(name, reference_machine, SPEEDUP_BASELINE).cycles
                target = matrix.get(name, machine_label, reno_label).cycles
                relative += reference / target
            relative /= len(matrix.workloads) or 1
            data[(reno_label, machine_label)] = relative
            row.append(format_percent(relative))
        rows.append(row)
    return ExperimentReport(
        name=f"Figure 11 bottom ({suite})",
        description="RENO compensating for reduced issue width",
        headers=headers, rows=rows, data=data,
    )


# ---------------------------------------------------------------------------
# Figure 12: 2-cycle wakeup/select loop
# ---------------------------------------------------------------------------


def figure12_scheduler(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
    jobs: int | None = None,
    cache=None,
) -> ExperimentReport:
    """Relative performance with 1- vs 2-cycle scheduling loops; 100% = the
    1-cycle baseline without RENO."""
    names = _workload_list(suite, workloads)
    machines = {"sched1": MachineConfig.default_4wide(),
                "sched2": MachineConfig.default_4wide().with_scheduler_latency(2)}
    renos = dict(_RENO_STACK)
    matrix = run_matrix(names, machines, renos, scale=scale, jobs=jobs, cache=cache)

    headers = ["config", "1-cycle", "2-cycle"]
    rows = []
    data = {}
    for reno_label in (SPEEDUP_BASELINE, "CF+ME", "RENO"):
        row = [reno_label]
        for machine_label in machines:
            relative = 0.0
            for name in matrix.workloads:
                reference = matrix.get(name, "sched1", SPEEDUP_BASELINE).cycles
                target = matrix.get(name, machine_label, reno_label).cycles
                relative += reference / target
            relative /= len(matrix.workloads) or 1
            data[(reno_label, machine_label)] = relative
            row.append(format_percent(relative))
        rows.append(row)
    return ExperimentReport(
        name=f"Figure 12 ({suite})",
        description="RENO with a 2-cycle wakeup-select loop",
        headers=headers, rows=rows, data=data,
    )


# ---------------------------------------------------------------------------
# Scale sweep: the same grids at growing workload sizes
# ---------------------------------------------------------------------------


def run_scale_sweep(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scales: tuple[int, ...] = (1, 2, 4),
    jobs: int | None = None,
    cache=None,
    max_instructions: int = 2_000_000,
) -> ExperimentReport:
    """Baseline-vs-RENO behaviour as the workloads scale up.

    For each ``scale`` the full (workload × {BASE, RENO}) grid is fanned
    through the parallel/cached experiment engine — ``jobs=`` parallelises
    across workloads and ``cache=`` makes repeated sweeps nearly free, which
    is what makes multi-scale grids cheap to iterate on.  Rows report the
    dynamic instruction count, baseline cycles/IPC and the RENO speedup at
    every (workload, scale) point, plus a per-scale arithmetic mean.

    Args:
        suite: Workload suite name (``specint``/``mediabench``).
        workloads: Optional explicit workload subset.
        scales: Scale factors to sweep (each roughly multiplies the dynamic
            instruction count).
        jobs: Worker processes per grid (see :func:`repro.harness.run_matrix`).
        cache: Outcome cache (same forms as :func:`repro.harness.run_matrix`).
        max_instructions: Functional-simulation budget per workload run.
    """
    names = _workload_list(suite, workloads)
    machines = {"4wide": MachineConfig.default_4wide()}
    renos = {SPEEDUP_BASELINE: None, "RENO": RenoConfig.reno_default()}

    headers = ["benchmark", "scale", "instructions", "base cycles",
               "base IPC", "RENO speedup"]
    rows = []
    data = {}
    for scale in scales:
        matrix = run_matrix(names, machines, renos, scale=scale, jobs=jobs,
                            cache=cache, max_instructions=max_instructions)
        speedup_sum = 0.0
        for name in matrix.workloads:
            base = matrix.get(name, "4wide", SPEEDUP_BASELINE)
            speedup = matrix.speedup(name, "4wide", "RENO") - 1
            speedup_sum += speedup
            data[(name, scale)] = {
                "instructions": base.stats.committed,
                "base_cycles": base.cycles,
                "base_ipc": base.ipc,
                "speedup": speedup,
            }
            rows.append([_label(name), str(scale), str(base.stats.committed),
                         str(base.cycles), f"{base.ipc:.2f}",
                         format_percent(speedup, signed=True)])
        count = len(matrix.workloads) or 1
        data[("amean", scale)] = {"speedup": speedup_sum / count}
        rows.append(["amean", str(scale), "", "", "",
                     format_percent(speedup_sum / count, signed=True)])
    return ExperimentReport(
        name=f"Scale sweep ({suite})",
        description=f"baseline vs RENO at workload scales {list(scales)}",
        headers=headers, rows=rows, data=data,
    )


# ---------------------------------------------------------------------------
# In-text results
# ---------------------------------------------------------------------------


def instruction_mix(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
) -> ExperimentReport:
    """Dynamic fractions of moves and register-immediate additions (§2.3).

    Runs only the (fast) functional simulator, so it takes no ``jobs``/
    ``cache`` arguments.
    """
    names = _workload_list(suite, workloads)
    headers = ["benchmark", "moves", "reg-imm adds", "loads", "stores", "branches"]
    rows = []
    data = {}
    sums = [0.0] * 5
    for entry in names:
        from repro.workloads.base import get_workload

        workload = get_workload(entry) if isinstance(entry, str) else entry
        result = FunctionalSimulator(workload.build(scale), 2_000_000).run()
        mix = mix_statistics(result.trace)
        values = [mix.move_fraction, mix.reg_imm_add_fraction, mix.load_fraction,
                  mix.store_fraction, mix.branch_fraction]
        sums = [total + value for total, value in zip(sums, values)]
        data[workload.name] = dict(zip(["moves", "addis", "loads", "stores", "branches"], values))
        rows.append([workload.label] + [format_percent(value) for value in values])
    count = len(names) or 1
    rows.append(["amean"] + [format_percent(total / count) for total in sums])
    data["amean"] = dict(zip(["moves", "addis", "loads", "stores", "branches"],
                             [total / count for total in sums]))
    return ExperimentReport(
        name=f"Instruction mix ({suite})",
        description="dynamic move / register-immediate-addition fractions (§2.3)",
        headers=headers, rows=rows, data=data,
    )


def fusion_sensitivity(
    suite: str = "mediabench",
    workloads: list[str] | None = None,
    scale: int = 1,
    jobs: int | None = None,
    cache=None,
) -> ExperimentReport:
    """§3.3: how much of RENO_CF's benefit survives if every fusion costs a cycle."""
    names = _workload_list(suite, workloads)
    machines = {"4wide": MachineConfig.default_4wide()}
    renos = {SPEEDUP_BASELINE: None, "CF+ME": RenoConfig.reno_cf_me(),
             "CF+ME slow fusion": RenoConfig.reno_cf_me().with_slow_fusion()}
    matrix = run_matrix(names, machines, renos, scale=scale, jobs=jobs, cache=cache)
    headers = ["benchmark", "CF+ME speedup", "slow-fusion speedup", "benefit retained"]
    rows = []
    data = {}
    for name in matrix.workloads:
        fast = matrix.speedup(name, "4wide", "CF+ME") - 1
        slow = matrix.speedup(name, "4wide", "CF+ME slow fusion") - 1
        retained = slow / fast if fast > 0 else 1.0
        data[name] = {"fast": fast, "slow": slow, "retained": retained}
        rows.append([_label(name), format_percent(fast, signed=True),
                     format_percent(slow, signed=True), format_percent(retained)])
    return ExperimentReport(
        name=f"Fusion sensitivity ({suite})",
        description="RENO_CF benefit with 0-cycle vs 1-cycle fusion (§3.3)",
        headers=headers, rows=rows, data=data,
    )


def integration_table_cost(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
    jobs: int | None = None,
    cache=None,
) -> ExperimentReport:
    """§4.4: IT bandwidth (lookups + insertions) for the default division of
    labor versus a full integration table."""
    names = _workload_list(suite, workloads)
    machines = {"4wide": MachineConfig.default_4wide()}
    renos = {SPEEDUP_BASELINE: None, "RENO": RenoConfig.reno_default(),
             "RENO+FullInteg": RenoConfig.reno_full_integration()}
    matrix = run_matrix(names, machines, renos, scale=scale, jobs=jobs, cache=cache)
    headers = ["benchmark", "RENO IT accesses", "FullInteg IT accesses", "saved", "elim RENO", "elim FullInteg"]
    rows = []
    data = {}
    for name in matrix.workloads:
        default_stats = matrix.get(name, "4wide", "RENO").stats
        full_stats = matrix.get(name, "4wide", "RENO+FullInteg").stats
        default_accesses = default_stats.it_lookups + default_stats.it_insertions
        full_accesses = full_stats.it_lookups + full_stats.it_insertions
        saved = 1 - default_accesses / full_accesses if full_accesses else 0.0
        data[name] = {"default": default_accesses, "full": full_accesses, "saved": saved}
        rows.append([_label(name), str(default_accesses), str(full_accesses),
                     format_percent(saved),
                     format_percent(default_stats.elimination_rate),
                     format_percent(full_stats.elimination_rate)])
    return ExperimentReport(
        name=f"Integration table cost ({suite})",
        description="IT bandwidth: loads-only division of labor vs full integration (§4.4)",
        headers=headers, rows=rows, data=data,
    )
