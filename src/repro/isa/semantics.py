"""Shared operation semantics for AXP-lite.

Both the functional (architectural) simulator and the timing simulator's
execute stage evaluate instructions through these helpers, so the two can be
cross-checked value-for-value.  All arithmetic is 64-bit two's complement.
"""

from __future__ import annotations

from repro.isa.opcodes import Opcode

#: 64-bit mask.
MASK64 = (1 << 64) - 1


def mask64(value: int) -> int:
    """Wrap ``value`` to an unsigned 64-bit quantity."""
    return value & MASK64


def to_signed(value: int, bits: int = 64) -> int:
    """Interpret the low ``bits`` of ``value`` as a two's-complement integer."""
    value &= (1 << bits) - 1
    sign_bit = 1 << (bits - 1)
    return value - (1 << bits) if value & sign_bit else value


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` of ``value`` to a 64-bit quantity."""
    return mask64(to_signed(value, bits))


def fits_signed(value: int, bits: int) -> bool:
    """Return True if ``value`` is representable as a signed ``bits``-bit int."""
    limit = 1 << (bits - 1)
    return -limit <= value < limit


_SHIFT_MASK = 63


def alu_eval(opcode: Opcode, a: int, b: int, imm: int) -> int:
    """Evaluate a non-memory, non-control operation.

    Args:
        opcode: The operation.
        a: Value of ``rs1`` (unsigned 64-bit representation).
        b: Value of ``rs2`` (unsigned 64-bit representation); ignored by
            register-immediate forms.
        imm: The instruction immediate (a plain Python int, already signed).

    Returns:
        The 64-bit (unsigned representation) result value.
    """
    # Ordered by dynamic frequency in the synthetic suites; the signed views
    # are derived only on the branches that need them.
    if opcode is Opcode.ADDI:
        return (a + imm) & MASK64
    if opcode is Opcode.ADD:
        return (a + b) & MASK64
    if opcode is Opcode.MOV:
        return a
    if opcode is Opcode.SUBI:
        return (a - imm) & MASK64
    if opcode is Opcode.SUB:
        return (a - b) & MASK64
    if opcode is Opcode.AND:
        return a & b
    if opcode is Opcode.OR:
        return a | b
    if opcode is Opcode.XOR:
        return a ^ b
    if opcode is Opcode.SLL:
        return mask64(a << (b & _SHIFT_MASK))
    if opcode is Opcode.SRL:
        return a >> (b & _SHIFT_MASK)
    if opcode is Opcode.SRA:
        return mask64(to_signed(a) >> (b & _SHIFT_MASK))
    if opcode is Opcode.MUL:
        return mask64(to_signed(a) * to_signed(b))
    if opcode is Opcode.DIV:
        sb = to_signed(b)
        if sb == 0:
            return 0
        return mask64(int(to_signed(a) / sb))
    if opcode is Opcode.CMPEQ:
        return 1 if a == b else 0
    if opcode is Opcode.CMPLT:
        return 1 if to_signed(a) < to_signed(b) else 0
    if opcode is Opcode.CMPLE:
        return 1 if to_signed(a) <= to_signed(b) else 0
    if opcode is Opcode.CMPULT:
        return 1 if a < b else 0
    if opcode is Opcode.ANDI:
        return a & (imm & MASK64)
    if opcode is Opcode.ORI:
        return a | (imm & MASK64)
    if opcode is Opcode.XORI:
        return a ^ (imm & MASK64)
    if opcode is Opcode.SLLI:
        return mask64(a << (imm & _SHIFT_MASK))
    if opcode is Opcode.SRLI:
        return a >> (imm & _SHIFT_MASK)
    if opcode is Opcode.SRAI:
        return mask64(to_signed(a) >> (imm & _SHIFT_MASK))
    if opcode is Opcode.MULI:
        return mask64(to_signed(a) * imm)
    if opcode is Opcode.CMPEQI:
        return 1 if to_signed(a) == imm else 0
    if opcode is Opcode.CMPLTI:
        return 1 if to_signed(a) < imm else 0
    if opcode is Opcode.CMPLEI:
        return 1 if to_signed(a) <= imm else 0
    if opcode is Opcode.CMPULTI:
        return 1 if a < (imm & MASK64) else 0
    if opcode is Opcode.LDAH:
        return mask64(a + (imm << 16))
    raise ValueError(f"alu_eval cannot evaluate opcode {opcode}")


def branch_taken(opcode: Opcode, a: int) -> bool:
    """Return the direction of a conditional branch given its register value."""
    sa = to_signed(a)
    if opcode is Opcode.BEQ:
        return sa == 0
    if opcode is Opcode.BNE:
        return sa != 0
    if opcode is Opcode.BLT:
        return sa < 0
    if opcode is Opcode.BGE:
        return sa >= 0
    if opcode is Opcode.BLE:
        return sa <= 0
    if opcode is Opcode.BGT:
        return sa > 0
    raise ValueError(f"branch_taken cannot evaluate opcode {opcode}")


def effective_address(base: int, displacement: int) -> int:
    """Compute a load/store effective address (base register + displacement)."""
    return mask64(base + displacement)
