"""Opcode enumeration and static per-opcode metadata for AXP-lite.

Every opcode has an :class:`OpSpec` describing how its operands are read and
written, which functional-unit class executes it, its execution latency, and
the properties RENO's decoder needs: whether it is a register move, whether
it is a register-immediate addition (and therefore foldable by RENO_CF), and
whether it is a load/store/branch.

The operand conventions are:

========  =======================================================
format    meaning
========  =======================================================
``rr``    ``op rd, rs1, rs2``      (reg-reg ALU)
``ri``    ``op rd, rs1, imm``      (reg-imm ALU)
``mov``   ``mov rd, rs1``          (register move pseudo-op)
``load``  ``op rd, imm(rs1)``      (memory load)
``store`` ``op rs2, imm(rs1)``     (memory store; rs2 is the data)
``br``    ``op rs1, target``       (conditional branch, compares rs1 to 0)
``jmp``   ``op target``            (unconditional direct branch)
``call``  ``op target``            (subroutine call, writes the RA register)
``ret``   ``op rs1``               (indirect jump, usually through RA)
``none``  no operands (``nop``, ``halt``)
========  =======================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpClass(enum.Enum):
    """Coarse functional classes used by the scheduler and statistics."""

    ALU = "alu"          # single-cycle integer op (add/logic/compare)
    SHIFT = "shift"      # single-cycle shifts (only ALU0 has a shifter)
    MUL = "mul"          # pipelined multi-cycle multiply
    DIV = "div"          # unpipelined long-latency divide
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"    # conditional branches
    JUMP = "jump"        # unconditional direct jumps
    CALL = "call"
    RET = "ret"
    NOP = "nop"
    HALT = "halt"


class Opcode(enum.Enum):
    """All AXP-lite opcodes."""

    # Register-register ALU.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    MUL = "mul"
    DIV = "div"
    CMPEQ = "cmpeq"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPULT = "cmpult"

    # Register-immediate ALU.
    ADDI = "addi"
    SUBI = "subi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    MULI = "muli"
    CMPEQI = "cmpeqi"
    CMPLTI = "cmplti"
    CMPLEI = "cmplei"
    CMPULTI = "cmpulti"
    LDAH = "ldah"        # rd = rs1 + (imm << 16): builds 32-bit constants.

    # Register move pseudo-instruction (recognised by the decoder).
    MOV = "mov"

    # Memory.
    LD = "ld"            # 8-byte load
    LDW = "ldw"          # 4-byte sign-extending load
    LDBU = "ldbu"        # 1-byte zero-extending load
    ST = "st"            # 8-byte store
    STW = "stw"          # 4-byte store
    STB = "stb"          # 1-byte store

    # Control.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLE = "ble"
    BGT = "bgt"
    BR = "br"
    JSR = "jsr"
    RET = "ret"
    NOP = "nop"
    HALT = "halt"


@dataclass(frozen=True, slots=True)
class OpSpec:
    """Static metadata for one opcode.

    Attributes:
        opcode: The opcode this spec describes.
        op_class: Functional class (drives issue-port selection and latency).
        fmt: Operand format string (see module docstring).
        latency: Execution latency in cycles once issued (loads add cache
            latency on top of this address-generation cycle).
        reads_rs1: True if the instruction reads logical register ``rs1``.
        reads_rs2: True if the instruction reads logical register ``rs2``.
        writes_rd: True if the instruction writes logical register ``rd``.
        is_move: True for the register-move pseudo-op (RENO_ME target).
        is_reg_imm_add: True for register-immediate additions in the RENO_CF
            sense: the result equals a register value plus a (possibly
            negative) immediate.  ``mov`` is included because it is an
            addition with an immediate of zero; ``ldah`` is included because
            it adds ``imm << 16``.
        fold_shift: Number of bits the immediate is shifted left before being
            added (16 for ``ldah``, 0 otherwise).
        mem_bytes: Access size in bytes for loads/stores, else 0.
        mem_signed: True if a load sign-extends its result.
        is_stack_pointer_idiom_candidate: marker used by tests/documentation
            only; stack-pointer recognition itself is dynamic (based on the
            register number), not static.
    """

    opcode: Opcode
    op_class: OpClass
    fmt: str
    latency: int = 1
    reads_rs1: bool = False
    reads_rs2: bool = False
    writes_rd: bool = False
    is_move: bool = False
    is_reg_imm_add: bool = False
    fold_shift: int = 0
    mem_bytes: int = 0
    mem_signed: bool = False

    # Classification flags derived from op_class, precomputed so the
    # simulators' hot paths read plain slot attributes (not part of
    # equality/hash).
    is_load: bool = field(init=False, repr=False, compare=False, default=False)
    is_store: bool = field(init=False, repr=False, compare=False, default=False)
    is_mem: bool = field(init=False, repr=False, compare=False, default=False)
    is_cond_branch: bool = field(init=False, repr=False, compare=False, default=False)
    is_control: bool = field(init=False, repr=False, compare=False, default=False)
    is_call: bool = field(init=False, repr=False, compare=False, default=False)
    is_return: bool = field(init=False, repr=False, compare=False, default=False)

    def __post_init__(self) -> None:
        op_class = self.op_class
        set_field = object.__setattr__
        set_field(self, "is_load", op_class is OpClass.LOAD)
        set_field(self, "is_store", op_class is OpClass.STORE)
        set_field(self, "is_mem", op_class is OpClass.LOAD or op_class is OpClass.STORE)
        set_field(self, "is_cond_branch", op_class is OpClass.BRANCH)
        set_field(self, "is_control", op_class in (
            OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET))
        set_field(self, "is_call", op_class is OpClass.CALL)
        set_field(self, "is_return", op_class is OpClass.RET)


def _rr(op: Opcode, op_class: OpClass = OpClass.ALU, latency: int = 1) -> OpSpec:
    return OpSpec(op, op_class, "rr", latency=latency,
                  reads_rs1=True, reads_rs2=True, writes_rd=True)


def _ri(op: Opcode, op_class: OpClass = OpClass.ALU, latency: int = 1,
        is_reg_imm_add: bool = False, fold_shift: int = 0) -> OpSpec:
    return OpSpec(op, op_class, "ri", latency=latency,
                  reads_rs1=True, writes_rd=True,
                  is_reg_imm_add=is_reg_imm_add, fold_shift=fold_shift)


def _load(op: Opcode, size: int, signed: bool) -> OpSpec:
    return OpSpec(op, OpClass.LOAD, "load", latency=1,
                  reads_rs1=True, writes_rd=True,
                  mem_bytes=size, mem_signed=signed)


def _store(op: Opcode, size: int) -> OpSpec:
    return OpSpec(op, OpClass.STORE, "store", latency=1,
                  reads_rs1=True, reads_rs2=True, mem_bytes=size)


def _branch(op: Opcode) -> OpSpec:
    return OpSpec(op, OpClass.BRANCH, "br", latency=1, reads_rs1=True)


OPCODE_SPECS: dict[Opcode, OpSpec] = {
    spec.opcode: spec
    for spec in [
        # Register-register ALU.
        _rr(Opcode.ADD),
        _rr(Opcode.SUB),
        _rr(Opcode.AND),
        _rr(Opcode.OR),
        _rr(Opcode.XOR),
        _rr(Opcode.SLL, OpClass.SHIFT),
        _rr(Opcode.SRL, OpClass.SHIFT),
        _rr(Opcode.SRA, OpClass.SHIFT),
        _rr(Opcode.MUL, OpClass.MUL, latency=3),
        _rr(Opcode.DIV, OpClass.DIV, latency=12),
        _rr(Opcode.CMPEQ),
        _rr(Opcode.CMPLT),
        _rr(Opcode.CMPLE),
        _rr(Opcode.CMPULT),
        # Register-immediate ALU.  ``addi``/``subi`` are the RENO_CF targets.
        _ri(Opcode.ADDI, is_reg_imm_add=True),
        _ri(Opcode.SUBI, is_reg_imm_add=True),
        _ri(Opcode.ANDI),
        _ri(Opcode.ORI),
        _ri(Opcode.XORI),
        _ri(Opcode.SLLI, OpClass.SHIFT),
        _ri(Opcode.SRLI, OpClass.SHIFT),
        _ri(Opcode.SRAI, OpClass.SHIFT),
        _ri(Opcode.MULI, OpClass.MUL, latency=3),
        _ri(Opcode.CMPEQI),
        _ri(Opcode.CMPLTI),
        _ri(Opcode.CMPLEI),
        _ri(Opcode.CMPULTI),
        _ri(Opcode.LDAH, is_reg_imm_add=True, fold_shift=16),
        # Register move (an addition with an immediate of zero).
        OpSpec(Opcode.MOV, OpClass.ALU, "mov", latency=1,
               reads_rs1=True, writes_rd=True,
               is_move=True, is_reg_imm_add=True),
        # Memory.
        _load(Opcode.LD, 8, signed=True),
        _load(Opcode.LDW, 4, signed=True),
        _load(Opcode.LDBU, 1, signed=False),
        _store(Opcode.ST, 8),
        _store(Opcode.STW, 4),
        _store(Opcode.STB, 1),
        # Control.
        _branch(Opcode.BEQ),
        _branch(Opcode.BNE),
        _branch(Opcode.BLT),
        _branch(Opcode.BGE),
        _branch(Opcode.BLE),
        _branch(Opcode.BGT),
        OpSpec(Opcode.BR, OpClass.JUMP, "jmp", latency=1),
        OpSpec(Opcode.JSR, OpClass.CALL, "call", latency=1, writes_rd=True),
        OpSpec(Opcode.RET, OpClass.RET, "ret", latency=1, reads_rs1=True),
        OpSpec(Opcode.NOP, OpClass.NOP, "none", latency=1),
        OpSpec(Opcode.HALT, OpClass.HALT, "none", latency=1),
    ]
}


def spec_for(opcode: Opcode) -> OpSpec:
    """Return the :class:`OpSpec` for ``opcode``."""
    return OPCODE_SPECS[opcode]
