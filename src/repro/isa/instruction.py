"""Static instruction representation and the decoded-op cache for AXP-lite."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import OpClass, Opcode, OpSpec, spec_for
from repro.isa.registers import ZERO_REG, reg_name


@dataclass(frozen=True, slots=True)
class Instruction:
    """One static AXP-lite instruction.

    Operand fields that an opcode does not use are left at their defaults;
    :class:`~repro.isa.opcodes.OpSpec` describes which fields are meaningful
    for a given opcode.

    Attributes:
        opcode: The operation.
        rd: Destination logical register (or None).
        rs1: First source logical register (base register for memory ops,
            tested register for branches, target register for ``ret``).
        rs2: Second source logical register (store data register).
        imm: Immediate / displacement value (signed Python int).
        target: Branch/call target; a label string before assembly and an
            instruction index (int) after label resolution.
        comment: Optional free-form annotation carried through for debugging.
    """

    opcode: Opcode
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    imm: int = 0
    target: int | str | None = None
    comment: str = ""

    # Derived fields, precomputed once so the simulators' hot paths read
    # plain attributes instead of calling properties (not part of
    # equality/hash).
    #: Static metadata for this instruction's opcode.
    spec: OpSpec = field(init=False, repr=False, compare=False, default=None)
    #: Logical register written (None for stores/branches/zero-reg writes).
    dest_register: int | None = field(init=False, repr=False, compare=False, default=None)
    #: The signed displacement this instruction adds to its source register.
    #: Only meaningful for register-immediate additions: ``mov`` contributes
    #: 0, ``addi`` contributes ``imm``, ``subi`` contributes ``-imm`` and
    #: ``ldah`` contributes ``imm << 16``.
    folded_displacement: int = field(init=False, repr=False, compare=False, default=0)
    _sources: tuple[int, ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        spec = spec_for(self.opcode)
        object.__setattr__(self, "spec", spec)
        # Writes to the hardwired zero register are treated as no
        # destination, which matches how renaming handles them (no mapping
        # update).
        dest = self.rd if spec.writes_rd and self.rd not in (None, ZERO_REG) else None
        object.__setattr__(self, "dest_register", dest)
        if self.opcode is Opcode.MOV:
            folded = 0
        elif self.opcode is Opcode.SUBI:
            folded = -self.imm
        else:
            folded = self.imm << spec.fold_shift
        object.__setattr__(self, "folded_displacement", folded)
        sources = []
        if spec.reads_rs1 and self.rs1 is not None:
            sources.append(self.rs1)
        if spec.reads_rs2 and self.rs2 is not None:
            sources.append(self.rs2)
        object.__setattr__(self, "_sources", tuple(sources))

    # -- operand helpers --------------------------------------------------

    def source_registers(self) -> tuple[int, ...]:
        """Logical registers read by this instruction (zero register included)."""
        return self._sources

    # -- classification shortcuts used throughout the pipeline ------------

    @property
    def is_load(self) -> bool:
        return self.spec.is_load

    @property
    def is_store(self) -> bool:
        return self.spec.is_store

    @property
    def is_mem(self) -> bool:
        return self.spec.is_mem

    @property
    def is_cond_branch(self) -> bool:
        return self.spec.is_cond_branch

    @property
    def is_control(self) -> bool:
        return self.spec.is_control

    @property
    def is_call(self) -> bool:
        return self.spec.is_call

    @property
    def is_return(self) -> bool:
        return self.spec.is_return

    @property
    def is_move(self) -> bool:
        return self.spec.is_move

    @property
    def is_reg_imm_add(self) -> bool:
        """True if this is a register-immediate addition in the RENO_CF sense."""
        return self.spec.is_reg_imm_add

    # -- pretty printing ---------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        spec = self.spec
        name = self.opcode.value
        if spec.fmt == "rr":
            return f"{name} {reg_name(self.rd)}, {reg_name(self.rs1)}, {reg_name(self.rs2)}"
        if spec.fmt == "ri":
            return f"{name} {reg_name(self.rd)}, {reg_name(self.rs1)}, {self.imm}"
        if spec.fmt == "mov":
            return f"{name} {reg_name(self.rd)}, {reg_name(self.rs1)}"
        if spec.fmt == "load":
            return f"{name} {reg_name(self.rd)}, {self.imm}({reg_name(self.rs1)})"
        if spec.fmt == "store":
            return f"{name} {reg_name(self.rs2)}, {self.imm}({reg_name(self.rs1)})"
        if spec.fmt == "br":
            return f"{name} {reg_name(self.rs1)}, {self.target}"
        if spec.fmt == "jmp":
            return f"{name} {self.target}"
        if spec.fmt == "call":
            return f"{name} {reg_name(self.rd)}, {self.target}"
        if spec.fmt == "ret":
            return f"{name} ({reg_name(self.rs1)})"
        return name


# ---------------------------------------------------------------------------
# Decoded-op cache
# ---------------------------------------------------------------------------
#
# The timing pipeline's hot loops (dispatch / execute / commit) used to chase
# ``dyn.instruction.spec.<flag>`` attribute chains for every dynamic
# instruction.  The decoded-op cache collapses everything those loops need
# into one immutable tuple per *static* instruction, so re-executed loop
# bodies index a flat tuple instead of touching ``Instruction``/``OpSpec``
# objects at all.

#: Issue-port class ids shared by the decoded-op cache and the scheduler
#: (index into :data:`repro.uarch.scheduler.PORT_CLASSES`).
CLASS_INT = 0
CLASS_LOAD = 1
CLASS_STORE = 2
CLASS_FP = 3

#: Flag bits of ``DecodedOp[0]`` (see :func:`decode_op`).
DF_LOAD = 1 << 0          #: reads memory
DF_STORE = 1 << 1         #: writes memory
DF_COND_BRANCH = 1 << 2   #: conditional branch (direction check at execute)
DF_CONTROL = 1 << 3       #: any control transfer (branch/jump/call/return)
DF_CALL = 1 << 4          #: writes the link value instead of an ALU result
DF_WRITES = 1 << 5        #: has a renamed destination register
DF_NO_EXECUTE = 1 << 6    #: never enters the issue queue (``nop``/``halt``)
DF_MEM_SIGNED = 1 << 7    #: load result is sign-extended
DF_MOVE = 1 << 8          #: register-move pseudo-op (RENO_ME target)
DF_REG_IMM_ADD = 1 << 9   #: register-immediate addition (RENO_CF foldable)
DF_IT_ALU = 1 << 10       #: ALU/shift class (IT-eligible under the full policy)

#: Decoded-tuple field indices (``op[D_FLAGS]`` style access in hot loops).
D_FLAGS = 0
D_CLASS = 1
D_LATENCY = 2
D_MEM_BYTES = 3
D_DEST = 4
D_IMM = 5
D_OPCODE = 6
D_FOLDED_DISP = 7
D_MEM_MASK = 8
D_SOURCES = 9

#: Process-wide memo: one decoded tuple per distinct static instruction.
#: :class:`Instruction` is frozen/hashable on its declarative fields, so two
#: structurally identical instructions (e.g. the same loop body assembled for
#: two workload scales) share one entry.
_DECODED_OPS: dict[Instruction, tuple] = {}


def decode_op(instruction: Instruction) -> tuple:
    """Decode a static instruction into its hot-path tuple (memoised).

    The layout (all plain ints except the opcode member) is::

        (flags, class_id, latency, mem_bytes, dest_reg, imm, opcode, folded,
         mem_mask, sources)

    * ``flags`` — the ``DF_*`` classification bits above;
    * ``class_id`` — issue-port class (``CLASS_INT``/``CLASS_LOAD``/...);
    * ``latency`` — base execution latency in cycles;
    * ``mem_bytes`` — access size for loads/stores, else 0;
    * ``dest_reg`` — destination logical register, or ``-1`` for none;
    * ``imm`` — the immediate / displacement operand;
    * ``opcode`` — the :class:`~repro.isa.opcodes.Opcode` member (for
      ``alu_eval``/``branch_taken`` and report labels);
    * ``folded`` — the RENO_CF folded displacement
      (:attr:`Instruction.folded_displacement`);
    * ``mem_mask`` — ``(1 << (8 * mem_bytes)) - 1``, the store-data mask
      (0 for non-memory instructions);
    * ``sources`` — the logical source registers
      (:meth:`Instruction.source_registers`), for renamers that map
      operands without touching the ``Instruction`` object.

    Decoding happens once per distinct static instruction; every later call
    is a dict hit, which is what makes re-executed loop bodies free of
    ``Instruction`` attribute traffic in the cycle loop.
    """
    op = _DECODED_OPS.get(instruction)
    if op is not None:
        return op
    spec = instruction.spec
    flags = 0
    if spec.is_load:
        flags |= DF_LOAD
    if spec.is_store:
        flags |= DF_STORE
    if spec.is_cond_branch:
        flags |= DF_COND_BRANCH
    if spec.is_control:
        flags |= DF_CONTROL
    if spec.is_call:
        flags |= DF_CALL
    if instruction.dest_register is not None:
        flags |= DF_WRITES
    if spec.op_class is OpClass.NOP or spec.op_class is OpClass.HALT:
        flags |= DF_NO_EXECUTE
    if spec.mem_signed:
        flags |= DF_MEM_SIGNED
    if spec.is_move:
        flags |= DF_MOVE
    if spec.is_reg_imm_add:
        flags |= DF_REG_IMM_ADD
    if spec.op_class is OpClass.ALU or spec.op_class is OpClass.SHIFT:
        flags |= DF_IT_ALU
    if spec.is_load:
        class_id = CLASS_LOAD
    elif spec.is_store:
        class_id = CLASS_STORE
    else:
        class_id = CLASS_INT
    dest = instruction.dest_register
    op = (
        flags,
        class_id,
        spec.latency,
        spec.mem_bytes,
        -1 if dest is None else dest,
        instruction.imm,
        instruction.opcode,
        instruction.folded_displacement,
        (1 << (8 * spec.mem_bytes)) - 1 if spec.mem_bytes else 0,
        instruction._sources,
    )
    _DECODED_OPS[instruction] = op
    return op


def decode_program(instructions: list[Instruction]) -> list[tuple]:
    """Decoded-op cache for a whole program, indexed by static index.

    The static index is the PC key in disguise: instruction *i* lives at
    ``pc = CODE_BASE + 4 * i``, and every
    :class:`~repro.functional.trace.DynamicInstruction` carries that index,
    so the pipeline reaches the decoded tuple with one list subscript.
    """
    return [decode_op(instruction) for instruction in instructions]
