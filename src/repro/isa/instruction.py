"""Static instruction representation for AXP-lite."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode, OpSpec, spec_for
from repro.isa.registers import ZERO_REG, reg_name


@dataclass(frozen=True, slots=True)
class Instruction:
    """One static AXP-lite instruction.

    Operand fields that an opcode does not use are left at their defaults;
    :class:`~repro.isa.opcodes.OpSpec` describes which fields are meaningful
    for a given opcode.

    Attributes:
        opcode: The operation.
        rd: Destination logical register (or None).
        rs1: First source logical register (base register for memory ops,
            tested register for branches, target register for ``ret``).
        rs2: Second source logical register (store data register).
        imm: Immediate / displacement value (signed Python int).
        target: Branch/call target; a label string before assembly and an
            instruction index (int) after label resolution.
        comment: Optional free-form annotation carried through for debugging.
    """

    opcode: Opcode
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    imm: int = 0
    target: int | str | None = None
    comment: str = ""

    # Derived fields, precomputed once so the simulators' hot paths read
    # plain attributes instead of calling properties (not part of
    # equality/hash).
    #: Static metadata for this instruction's opcode.
    spec: OpSpec = field(init=False, repr=False, compare=False, default=None)
    #: Logical register written (None for stores/branches/zero-reg writes).
    dest_register: int | None = field(init=False, repr=False, compare=False, default=None)
    #: The signed displacement this instruction adds to its source register.
    #: Only meaningful for register-immediate additions: ``mov`` contributes
    #: 0, ``addi`` contributes ``imm``, ``subi`` contributes ``-imm`` and
    #: ``ldah`` contributes ``imm << 16``.
    folded_displacement: int = field(init=False, repr=False, compare=False, default=0)
    _sources: tuple[int, ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        spec = spec_for(self.opcode)
        object.__setattr__(self, "spec", spec)
        # Writes to the hardwired zero register are treated as no
        # destination, which matches how renaming handles them (no mapping
        # update).
        dest = self.rd if spec.writes_rd and self.rd not in (None, ZERO_REG) else None
        object.__setattr__(self, "dest_register", dest)
        if self.opcode is Opcode.MOV:
            folded = 0
        elif self.opcode is Opcode.SUBI:
            folded = -self.imm
        else:
            folded = self.imm << spec.fold_shift
        object.__setattr__(self, "folded_displacement", folded)
        sources = []
        if spec.reads_rs1 and self.rs1 is not None:
            sources.append(self.rs1)
        if spec.reads_rs2 and self.rs2 is not None:
            sources.append(self.rs2)
        object.__setattr__(self, "_sources", tuple(sources))

    # -- operand helpers --------------------------------------------------

    def source_registers(self) -> tuple[int, ...]:
        """Logical registers read by this instruction (zero register included)."""
        return self._sources

    # -- classification shortcuts used throughout the pipeline ------------

    @property
    def is_load(self) -> bool:
        return self.spec.is_load

    @property
    def is_store(self) -> bool:
        return self.spec.is_store

    @property
    def is_mem(self) -> bool:
        return self.spec.is_mem

    @property
    def is_cond_branch(self) -> bool:
        return self.spec.is_cond_branch

    @property
    def is_control(self) -> bool:
        return self.spec.is_control

    @property
    def is_call(self) -> bool:
        return self.spec.is_call

    @property
    def is_return(self) -> bool:
        return self.spec.is_return

    @property
    def is_move(self) -> bool:
        return self.spec.is_move

    @property
    def is_reg_imm_add(self) -> bool:
        """True if this is a register-immediate addition in the RENO_CF sense."""
        return self.spec.is_reg_imm_add

    # -- pretty printing ---------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        spec = self.spec
        name = self.opcode.value
        if spec.fmt == "rr":
            return f"{name} {reg_name(self.rd)}, {reg_name(self.rs1)}, {reg_name(self.rs2)}"
        if spec.fmt == "ri":
            return f"{name} {reg_name(self.rd)}, {reg_name(self.rs1)}, {self.imm}"
        if spec.fmt == "mov":
            return f"{name} {reg_name(self.rd)}, {reg_name(self.rs1)}"
        if spec.fmt == "load":
            return f"{name} {reg_name(self.rd)}, {self.imm}({reg_name(self.rs1)})"
        if spec.fmt == "store":
            return f"{name} {reg_name(self.rs2)}, {self.imm}({reg_name(self.rs1)})"
        if spec.fmt == "br":
            return f"{name} {reg_name(self.rs1)}, {self.target}"
        if spec.fmt == "jmp":
            return f"{name} {self.target}"
        if spec.fmt == "call":
            return f"{name} {reg_name(self.rd)}, {self.target}"
        if spec.fmt == "ret":
            return f"{name} ({reg_name(self.rs1)})"
        return name
