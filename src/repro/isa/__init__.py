"""AXP-lite: the Alpha-like RISC instruction set used throughout the reproduction.

The paper evaluates RENO on the Alpha AXP ISA.  We cannot run real Alpha
binaries here, so this package defines a compact 64-bit RISC ISA with the
properties RENO cares about:

* 32 integer logical registers with ``r31`` hardwired to zero,
* 16-bit signed immediates on register-immediate ALU operations and on
  load/store displacements,
* register moves expressed as explicit ``mov`` pseudo-instructions (which the
  decoder recognises, exactly like the move idiom recognition the paper
  describes),
* compare-and-branch-on-zero control flow, subroutine call/return, and a
  small set of byte/word/quadword memory operations.

The public surface is:

* :class:`~repro.isa.instruction.Instruction` — a single static instruction,
* :class:`~repro.isa.opcodes.Opcode` / :class:`~repro.isa.opcodes.OpSpec` —
  the opcode enumeration and its static metadata,
* :class:`~repro.isa.assembler.Assembler` — a small DSL for writing programs,
* :class:`~repro.isa.program.Program` — an assembled program (code, data,
  labels) ready to run on the functional or timing simulators.
"""

from repro.isa.registers import (
    NUM_LOGICAL_REGS,
    ZERO_REG,
    RegisterNames,
    reg_name,
)
from repro.isa.opcodes import Opcode, OpClass, OpSpec, OPCODE_SPECS
from repro.isa.instruction import Instruction
from repro.isa.assembler import Assembler, AssemblyError
from repro.isa.program import Program, CODE_BASE, DATA_BASE, STACK_BASE

__all__ = [
    "NUM_LOGICAL_REGS",
    "ZERO_REG",
    "RegisterNames",
    "reg_name",
    "Opcode",
    "OpClass",
    "OpSpec",
    "OPCODE_SPECS",
    "Instruction",
    "Assembler",
    "AssemblyError",
    "Program",
    "CODE_BASE",
    "DATA_BASE",
    "STACK_BASE",
]
