"""Assembled program container and address-space layout constants."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction

#: Base virtual address of the code segment.  Instructions are 4 bytes.
CODE_BASE = 0x0000_1000

#: Base virtual address of the static data segment.
DATA_BASE = 0x1000_0000

#: Initial stack pointer value.  The stack grows toward lower addresses.
STACK_BASE = 0x7FFF_F000

#: Base address of the "heap" region workloads may use for dynamic-looking
#: allocations (it is just a convention; there is no allocator in the ISA).
HEAP_BASE = 0x2000_0000

#: Instruction size in bytes.
INSTRUCTION_BYTES = 4


@dataclass
class Program:
    """An assembled AXP-lite program.

    Attributes:
        name: Human-readable program name (used in reports).
        instructions: The code, with branch targets resolved to instruction
            indices.
        labels: Code label → instruction index.
        symbols: Data symbol → byte address in the data segment.
        initial_memory: Byte address → byte value for statically initialised
            data.
        entry: Index of the first instruction to execute.
    """

    name: str
    instructions: list[Instruction]
    labels: dict[str, int] = field(default_factory=dict)
    symbols: dict[str, int] = field(default_factory=dict)
    initial_memory: dict[int, int] = field(default_factory=dict)
    entry: int = 0

    def __len__(self) -> int:
        return len(self.instructions)

    def pc_of(self, index: int) -> int:
        """Virtual address of the instruction at ``index``."""
        return CODE_BASE + index * INSTRUCTION_BYTES

    def index_of(self, pc: int) -> int:
        """Instruction index of virtual address ``pc``."""
        return (pc - CODE_BASE) // INSTRUCTION_BYTES

    def instruction_at(self, pc: int) -> Instruction:
        """The instruction at virtual address ``pc``."""
        return self.instructions[self.index_of(pc)]

    def static_mix(self) -> dict[str, int]:
        """Count static instructions by coarse category (for reporting)."""
        counts: dict[str, int] = {}
        for instruction in self.instructions:
            key = instruction.spec.op_class.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def disassemble(self) -> str:
        """Return a human-readable listing of the program."""
        index_to_label = {index: name for name, index in self.labels.items()}
        lines = []
        for index, instruction in enumerate(self.instructions):
            if index in index_to_label:
                lines.append(f"{index_to_label[index]}:")
            lines.append(f"  {self.pc_of(index):#010x}  {instruction}")
        return "\n".join(lines)
