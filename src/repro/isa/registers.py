"""Logical (architectural) register definitions for the AXP-lite ISA.

The register file follows Alpha conventions: 32 integer registers, with
``r31`` hardwired to zero.  The symbolic names mirror the Alpha calling
convention so that the hand-written workload kernels read like compiler
output (stack pointer, return address, argument registers, callee-saved
registers, and temporaries).
"""

from __future__ import annotations

#: Number of integer logical registers.
NUM_LOGICAL_REGS = 32

#: Register hardwired to zero (Alpha's ``r31``).
ZERO_REG = 31


class RegisterNames:
    """Symbolic register numbers following the Alpha calling convention.

    These are plain integers (not an enum) so they can be used directly as
    register operands in the assembler DSL without any conversion.
    """

    # Function result.
    V0 = 0
    # Caller-saved temporaries.
    T0 = 1
    T1 = 2
    T2 = 3
    T3 = 4
    T4 = 5
    T5 = 6
    T6 = 7
    T7 = 8
    # Callee-saved registers.
    S0 = 9
    S1 = 10
    S2 = 11
    S3 = 12
    S4 = 13
    S5 = 14
    # Frame pointer (callee-saved).
    FP = 15
    # Argument registers.
    A0 = 16
    A1 = 17
    A2 = 18
    A3 = 19
    A4 = 20
    A5 = 21
    # More caller-saved temporaries.
    T8 = 22
    T9 = 23
    T10 = 24
    T11 = 25
    # Return address.
    RA = 26
    # Procedure value / scratch.
    T12 = 27
    # Assembler temporary.
    AT = 28
    # Global pointer.
    GP = 29
    # Stack pointer.
    SP = 30
    # Hardwired zero.
    ZERO = 31


_NAME_TABLE = {
    0: "v0",
    1: "t0", 2: "t1", 3: "t2", 4: "t3", 5: "t4", 6: "t5", 7: "t6", 8: "t7",
    9: "s0", 10: "s1", 11: "s2", 12: "s3", 13: "s4", 14: "s5",
    15: "fp",
    16: "a0", 17: "a1", 18: "a2", 19: "a3", 20: "a4", 21: "a5",
    22: "t8", 23: "t9", 24: "t10", 25: "t11",
    26: "ra", 27: "t12", 28: "at", 29: "gp", 30: "sp", 31: "zero",
}


def reg_name(reg: int) -> str:
    """Return the conventional symbolic name for logical register ``reg``.

    Unknown register numbers fall back to ``r<n>`` so debug output never
    raises while printing malformed instructions.
    """
    return _NAME_TABLE.get(reg, f"r{reg}")
