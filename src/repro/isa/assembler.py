"""A small assembler DSL for writing AXP-lite programs in Python.

The workload kernels in :mod:`repro.workloads` are written against this DSL.
It deliberately encourages compiler-like code: there are helpers for stack
frames (prologue/epilogue with callee-save spills), for loading constants and
data-symbol addresses, and the usual label/branch machinery.  These idioms
are exactly the ones RENO exploits (register moves at call boundaries, stack
pointer adjustment by register-immediate addition, spill/reload pairs).

Example::

    asm = Assembler("count")
    buf = asm.word_array("buf", [3, 1, 4, 1, 5])
    asm.la(a0, "buf")
    asm.li(t0, 5)
    asm.li(v0, 0)
    asm.label("loop")
    asm.ld(t1, 0, a0)
    asm.add(v0, v0, t1)
    asm.addi(a0, a0, 8)
    asm.subi(t0, t0, 1)
    asm.bgt(t0, "loop")
    asm.halt()
    program = asm.assemble()
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import DATA_BASE, Program
from repro.isa.registers import RegisterNames as R
from repro.isa.registers import ZERO_REG
from repro.isa.semantics import fits_signed, to_signed

#: Width of ALU immediates and memory displacements.
IMMEDIATE_BITS = 16


class AssemblyError(Exception):
    """Raised for malformed programs (unknown labels, oversized immediates...)."""


class Assembler:
    """Builder for :class:`~repro.isa.program.Program` objects."""

    def __init__(self, name: str = "program", data_base: int = DATA_BASE):
        self.name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._symbols: dict[str, int] = {}
        self._memory: dict[int, int] = {}
        self._data_cursor = data_base

    # ------------------------------------------------------------------
    # Data segment
    # ------------------------------------------------------------------

    def _allocate(self, name: str, size_bytes: int, align: int = 8) -> int:
        if name in self._symbols:
            raise AssemblyError(f"data symbol {name!r} defined twice")
        cursor = self._data_cursor
        if cursor % align:
            cursor += align - (cursor % align)
        self._symbols[name] = cursor
        self._data_cursor = cursor + size_bytes
        return cursor

    def word_array(self, name: str, values: list[int]) -> int:
        """Allocate and initialise an array of 64-bit words; returns its address."""
        address = self._allocate(name, 8 * len(values))
        for offset, value in enumerate(values):
            self._write_word(address + 8 * offset, value)
        return address

    def byte_array(self, name: str, values: bytes | list[int]) -> int:
        """Allocate and initialise an array of bytes; returns its address."""
        address = self._allocate(name, len(values))
        for offset, value in enumerate(values):
            self._memory[address + offset] = value & 0xFF
        return address

    def zeros(self, name: str, num_words: int) -> int:
        """Allocate ``num_words`` zero-initialised 64-bit words."""
        return self.word_array(name, [0] * num_words)

    def fill_words(self, name: str, values: list[int], word_offset: int = 0) -> None:
        """Overwrite words of an already-declared symbol with ``values``.

        Useful when the initial contents depend on the symbol's own address
        (e.g. linked structures whose nodes store absolute pointers).
        """
        address = self.symbol(name) + 8 * word_offset
        for offset, value in enumerate(values):
            self._write_word(address + 8 * offset, value)

    def symbol(self, name: str) -> int:
        """Return the address of a previously declared data symbol."""
        try:
            return self._symbols[name]
        except KeyError as exc:
            raise AssemblyError(f"unknown data symbol {name!r}") from exc

    def _write_word(self, address: int, value: int) -> None:
        value &= (1 << 64) - 1
        for byte_index in range(8):
            self._memory[address + byte_index] = (value >> (8 * byte_index)) & 0xFF

    # ------------------------------------------------------------------
    # Labels and raw emission
    # ------------------------------------------------------------------

    def label(self, name: str) -> None:
        """Define a code label at the current position."""
        if name in self._labels:
            raise AssemblyError(f"label {name!r} defined twice")
        self._labels[name] = len(self._instructions)

    def emit(self, instruction: Instruction) -> None:
        """Append a raw instruction."""
        self._instructions.append(instruction)

    def _check_imm(self, imm: int, opcode: Opcode) -> None:
        if not fits_signed(imm, IMMEDIATE_BITS):
            raise AssemblyError(
                f"immediate {imm} does not fit in {IMMEDIATE_BITS} bits for {opcode.value}"
            )

    def _emit_rr(self, opcode: Opcode, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2))

    def _emit_ri(self, opcode: Opcode, rd: int, rs1: int, imm: int) -> None:
        self._check_imm(imm, opcode)
        self.emit(Instruction(opcode, rd=rd, rs1=rs1, imm=imm))

    # ------------------------------------------------------------------
    # Register-register ALU
    # ------------------------------------------------------------------

    def add(self, rd, rs1, rs2):
        self._emit_rr(Opcode.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        self._emit_rr(Opcode.SUB, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        self._emit_rr(Opcode.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        self._emit_rr(Opcode.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        self._emit_rr(Opcode.XOR, rd, rs1, rs2)

    def sll(self, rd, rs1, rs2):
        self._emit_rr(Opcode.SLL, rd, rs1, rs2)

    def srl(self, rd, rs1, rs2):
        self._emit_rr(Opcode.SRL, rd, rs1, rs2)

    def sra(self, rd, rs1, rs2):
        self._emit_rr(Opcode.SRA, rd, rs1, rs2)

    def mul(self, rd, rs1, rs2):
        self._emit_rr(Opcode.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        self._emit_rr(Opcode.DIV, rd, rs1, rs2)

    def cmpeq(self, rd, rs1, rs2):
        self._emit_rr(Opcode.CMPEQ, rd, rs1, rs2)

    def cmplt(self, rd, rs1, rs2):
        self._emit_rr(Opcode.CMPLT, rd, rs1, rs2)

    def cmple(self, rd, rs1, rs2):
        self._emit_rr(Opcode.CMPLE, rd, rs1, rs2)

    def cmpult(self, rd, rs1, rs2):
        self._emit_rr(Opcode.CMPULT, rd, rs1, rs2)

    # ------------------------------------------------------------------
    # Register-immediate ALU
    # ------------------------------------------------------------------

    def addi(self, rd, rs1, imm):
        self._emit_ri(Opcode.ADDI, rd, rs1, imm)

    def subi(self, rd, rs1, imm):
        self._emit_ri(Opcode.SUBI, rd, rs1, imm)

    def andi(self, rd, rs1, imm):
        self._emit_ri(Opcode.ANDI, rd, rs1, imm)

    def ori(self, rd, rs1, imm):
        self._emit_ri(Opcode.ORI, rd, rs1, imm)

    def xori(self, rd, rs1, imm):
        self._emit_ri(Opcode.XORI, rd, rs1, imm)

    def slli(self, rd, rs1, imm):
        self._emit_ri(Opcode.SLLI, rd, rs1, imm)

    def srli(self, rd, rs1, imm):
        self._emit_ri(Opcode.SRLI, rd, rs1, imm)

    def srai(self, rd, rs1, imm):
        self._emit_ri(Opcode.SRAI, rd, rs1, imm)

    def muli(self, rd, rs1, imm):
        self._emit_ri(Opcode.MULI, rd, rs1, imm)

    def cmpeqi(self, rd, rs1, imm):
        self._emit_ri(Opcode.CMPEQI, rd, rs1, imm)

    def cmplti(self, rd, rs1, imm):
        self._emit_ri(Opcode.CMPLTI, rd, rs1, imm)

    def cmplei(self, rd, rs1, imm):
        self._emit_ri(Opcode.CMPLEI, rd, rs1, imm)

    def cmpulti(self, rd, rs1, imm):
        self._emit_ri(Opcode.CMPULTI, rd, rs1, imm)

    def ldah(self, rd, rs1, imm):
        self._emit_ri(Opcode.LDAH, rd, rs1, imm)

    # ------------------------------------------------------------------
    # Moves and constants
    # ------------------------------------------------------------------

    def mov(self, rd, rs1):
        """Register move (the RENO_ME idiom)."""
        self.emit(Instruction(Opcode.MOV, rd=rd, rs1=rs1))

    def li(self, rd, value: int) -> None:
        """Load a constant into ``rd`` (1 or 2 instructions).

        Small constants become a single ``addi rd, zero, value``; larger
        32-bit constants use an ``ldah``/``addi`` pair, mirroring how Alpha
        compilers build constants.
        """
        value = to_signed(value & ((1 << 64) - 1)) if value >= (1 << 63) else value
        if fits_signed(value, IMMEDIATE_BITS):
            self.addi(rd, ZERO_REG, value)
            return
        low = to_signed(value & 0xFFFF, 16)
        high = (value - low) >> 16
        if not fits_signed(high, IMMEDIATE_BITS):
            raise AssemblyError(f"constant {value:#x} does not fit in 32 bits")
        self.ldah(rd, ZERO_REG, high)
        if low != 0:
            self.addi(rd, rd, low)

    def la(self, rd, symbol: str) -> None:
        """Load the address of data symbol ``symbol`` into ``rd``.

        The symbol must already have been declared (data before code), so the
        expansion is known at emission time.
        """
        self.li(rd, self.symbol(symbol))

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------

    def ld(self, rd, imm, base):
        self._check_imm(imm, Opcode.LD)
        self.emit(Instruction(Opcode.LD, rd=rd, rs1=base, imm=imm))

    def ldw(self, rd, imm, base):
        self._check_imm(imm, Opcode.LDW)
        self.emit(Instruction(Opcode.LDW, rd=rd, rs1=base, imm=imm))

    def ldbu(self, rd, imm, base):
        self._check_imm(imm, Opcode.LDBU)
        self.emit(Instruction(Opcode.LDBU, rd=rd, rs1=base, imm=imm))

    def st(self, rs, imm, base):
        self._check_imm(imm, Opcode.ST)
        self.emit(Instruction(Opcode.ST, rs1=base, rs2=rs, imm=imm))

    def stw(self, rs, imm, base):
        self._check_imm(imm, Opcode.STW)
        self.emit(Instruction(Opcode.STW, rs1=base, rs2=rs, imm=imm))

    def stb(self, rs, imm, base):
        self._check_imm(imm, Opcode.STB)
        self.emit(Instruction(Opcode.STB, rs1=base, rs2=rs, imm=imm))

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------

    def _emit_branch(self, opcode: Opcode, rs1: int, target: str) -> None:
        self.emit(Instruction(opcode, rs1=rs1, target=target))

    def beq(self, rs1, target):
        self._emit_branch(Opcode.BEQ, rs1, target)

    def bne(self, rs1, target):
        self._emit_branch(Opcode.BNE, rs1, target)

    def blt(self, rs1, target):
        self._emit_branch(Opcode.BLT, rs1, target)

    def bge(self, rs1, target):
        self._emit_branch(Opcode.BGE, rs1, target)

    def ble(self, rs1, target):
        self._emit_branch(Opcode.BLE, rs1, target)

    def bgt(self, rs1, target):
        self._emit_branch(Opcode.BGT, rs1, target)

    def br(self, target):
        self.emit(Instruction(Opcode.BR, target=target))

    def jsr(self, target, link_register: int = R.RA):
        """Call a subroutine: jumps to ``target`` and writes the return address."""
        self.emit(Instruction(Opcode.JSR, rd=link_register, target=target))

    def ret(self, register: int = R.RA):
        """Return through ``register`` (the return-address register by default)."""
        self.emit(Instruction(Opcode.RET, rs1=register))

    def nop(self):
        self.emit(Instruction(Opcode.NOP))

    def halt(self):
        self.emit(Instruction(Opcode.HALT))

    # ------------------------------------------------------------------
    # Compiler-style macros
    # ------------------------------------------------------------------

    def prologue(self, frame_size: int, save_registers: tuple[int, ...] = ()) -> None:
        """Emit a standard function prologue.

        Allocates a stack frame, saves the return address at offset 0 and any
        callee-saved registers at consecutive offsets.  This produces the
        stack-pointer decrement and spill stores that RENO_RA bypasses.
        """
        self.subi(R.SP, R.SP, frame_size)
        self.st(R.RA, 0, R.SP)
        for slot, register in enumerate(save_registers, start=1):
            self.st(register, 8 * slot, R.SP)

    def epilogue(self, frame_size: int, save_registers: tuple[int, ...] = ()) -> None:
        """Emit the matching epilogue: reload saves, pop the frame, return."""
        for slot, register in enumerate(save_registers, start=1):
            self.ld(register, 8 * slot, R.SP)
        self.ld(R.RA, 0, R.SP)
        self.addi(R.SP, R.SP, frame_size)
        self.ret()

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def assemble(self) -> Program:
        """Resolve labels and produce an executable :class:`Program`."""
        resolved: list[Instruction] = []
        for index, instruction in enumerate(self._instructions):
            target = instruction.target
            if isinstance(target, str):
                if target not in self._labels:
                    raise AssemblyError(
                        f"instruction {index} ({instruction.opcode.value}) references "
                        f"unknown label {target!r}"
                    )
                instruction = Instruction(
                    opcode=instruction.opcode,
                    rd=instruction.rd,
                    rs1=instruction.rs1,
                    rs2=instruction.rs2,
                    imm=instruction.imm,
                    target=self._labels[target],
                    comment=instruction.comment,
                )
            resolved.append(instruction)
        if not resolved:
            raise AssemblyError("cannot assemble an empty program")
        return Program(
            name=self.name,
            instructions=resolved,
            labels=dict(self._labels),
            symbols=dict(self._symbols),
            initial_memory=dict(self._memory),
        )
