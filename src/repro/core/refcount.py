"""Physical register reference counting (§3.1 of the paper).

All RENO optimizations rely on physical register *sharing*: several logical
registers (and in-flight instructions) may map to the same physical register.
The free list is therefore replaced by reference counts: a register is free
exactly when its count is zero.  Allocations and sharing operations increment
the count; the release that conventionally happens when the overwriting
instruction commits becomes a decrement.
"""

from __future__ import annotations

from collections import deque
from typing import Callable


class ReferenceCountError(Exception):
    """Raised when the reference-counting invariants are violated."""


class ReferenceCountManager:
    """Reference counts + implicit free list for the physical register file.

    Counters are conceptually unbounded (the paper sizes them so overflow is
    impossible: the maximum sharing degree is bounded by the number of
    architectural registers plus in-flight instructions); Python integers
    give us that for free, and :attr:`max_observed_count` reports the widest
    counter an implementation would have needed.
    """

    def __init__(self, num_registers: int, initially_live: int,
                 on_free: Callable[[int], None] | None = None):
        """Create the manager.

        Args:
            num_registers: Total physical registers.
            initially_live: How many low-numbered registers start with a
                count of one (the registers holding the initial architectural
                state).
            on_free: Optional callback invoked with the register number each
                time a register's count drops to zero (used to invalidate
                integration-table entries that name the register).
        """
        if initially_live > num_registers:
            raise ReferenceCountError("more live registers than physical registers")
        self.num_registers = num_registers
        self.counts: list[int] = [0] * num_registers
        for register in range(initially_live):
            self.counts[register] = 1
        self._free: deque[int] = deque(range(initially_live, num_registers))
        self._on_free = on_free
        self.max_observed_count = 1
        self.total_allocations = 0
        self.total_shares = 0

    # ------------------------------------------------------------------

    def free_count(self) -> int:
        """Number of physical registers available for allocation."""
        return len(self._free)

    def in_use_count(self) -> int:
        """Number of physical registers with a non-zero reference count."""
        return self.num_registers - len(self._free)

    def count(self, register: int) -> int:
        return self.counts[register]

    def allocate(self) -> int:
        """Allocate a free register with an initial count of one."""
        if not self._free:
            raise ReferenceCountError("no free physical registers")
        register = self._free.popleft()
        if self.counts[register] != 0:
            raise ReferenceCountError(f"register p{register} on the free list with count "
                                      f"{self.counts[register]}")
        self.counts[register] = 1
        self.total_allocations += 1
        return register

    def share(self, register: int) -> None:
        """A RENO sharing operation: one more mapping points at ``register``."""
        if self.counts[register] <= 0:
            raise ReferenceCountError(f"cannot share free register p{register}")
        self.counts[register] += 1
        self.total_shares += 1
        if self.counts[register] > self.max_observed_count:
            self.max_observed_count = self.counts[register]

    def release(self, register: int) -> None:
        """Drop one reference; the register becomes free when the count hits zero."""
        if self.counts[register] <= 0:
            raise ReferenceCountError(f"reference count underflow on p{register}")
        self.counts[register] -= 1
        if self.counts[register] == 0:
            self._free.append(register)
            if self._on_free is not None:
                self._on_free(register)

    def is_live(self, register: int) -> bool:
        """True while the register holds a value some mapping still needs."""
        return self.counts[register] > 0

    def check_conservation(self) -> None:
        """Invariant: every register is either free or has a positive count."""
        for register, count in enumerate(self.counts):
            if count < 0:
                raise ReferenceCountError(f"negative count on p{register}")
        free_set = set(self._free)
        for register, count in enumerate(self.counts):
            if count == 0 and register not in free_set:
                raise ReferenceCountError(f"p{register} leaked (count 0, not free)")
            if count > 0 and register in free_set:
                raise ReferenceCountError(f"p{register} free while still referenced")
