"""The RENO renamer.

This is the paper's mechanism: a register renamer that, in addition to the
conventional map-table update, recognises instructions whose output value
already exists (or can be described as an existing value plus an immediate)
and collapses them out of the execution stream by *sharing* physical
registers:

* moves (RENO_ME) and register-immediate additions (RENO_CF) short-circuit
  the map table, the latter by accumulating displacements in the extended
  ``[p : d]`` map-table format;
* loads (and, in the full-integration policy, ALU operations) whose dataflow
  signature hits in the integration table share the physical register that
  already holds their value (RENO_CSE and RENO_RA).

The renamer operates purely on physical register *names* and immediates: it
never reads the physical register file.  The only value information it keeps
is carried inside integration-table entries, where it stands in for the
pre-retirement re-execution check of the original register-integration
proposal (see DESIGN.md, "Validation strategy").
"""

from __future__ import annotations

from repro.core.config import IT_POLICY_FULL, RenoConfig
from repro.core.fusion import fusion_extra_latency
from repro.core.integration import IntegrationEntry, IntegrationTable
from repro.core.maptable import ExtendedMapTable, Mapping
from repro.core.refcount import ReferenceCountManager
from repro.functional.trace import DynamicInstruction
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import NUM_LOGICAL_REGS
from repro.isa.semantics import fits_signed
from repro.uarch.rename import RenameResult, Renamer

#: Store opcode → the load opcode a reverse (memory bypassing) entry targets.
_STORE_TO_LOAD = {
    Opcode.ST: Opcode.LD,
    Opcode.STW: Opcode.LDW,
    Opcode.STB: Opcode.LDBU,
}

#: Canonical key opcode for all register-immediate additions, so that
#: ``addi r, 16`` matches a reverse entry created by ``subi r, 16``.
_CANONICAL_ADD = "addi"


class RenoRenamer(Renamer):
    """Renamer implementing RENO_ME, RENO_CF and RENO_CSE+RA."""

    def __init__(self, num_physical_regs: int, config: RenoConfig | None = None):
        self.config = config or RenoConfig()
        self.config.validate()
        if num_physical_regs <= NUM_LOGICAL_REGS:
            raise ValueError("need more physical than logical registers")
        self.num_physical_regs = num_physical_regs
        self.map_table = ExtendedMapTable()
        self.integration_table: IntegrationTable | None = (
            IntegrationTable(self.config.it_entries, self.config.it_associativity)
            if self.config.enable_integration else None
        )
        self.refcounts = ReferenceCountManager(
            num_physical_regs, NUM_LOGICAL_REGS, on_free=self._on_register_freed
        )
        self._group_eliminated_logicals: set[int] = set()
        self.stats: dict[str, int] = {
            "eliminated_moves": 0,
            "eliminated_folds": 0,
            "eliminated_cse": 0,
            "eliminated_ra": 0,
            "overflow_cancellations": 0,
            "dependent_elimination_blocks": 0,
            "it_lookups": 0,
            "it_hits": 0,
            "it_insertions": 0,
            "it_value_mismatches": 0,
        }

    # ------------------------------------------------------------------
    # Renamer interface
    # ------------------------------------------------------------------

    def free_register_count(self) -> int:
        return self.refcounts.free_count()

    def begin_group(self) -> None:
        # Reuse one set for the life of the renamer (this runs every cycle).
        eliminated = self._group_eliminated_logicals
        if eliminated:
            eliminated.clear()

    def end_group(self) -> None:
        # Group state is reset lazily by the next begin_group.
        pass

    def rename_next(self, dyn: DynamicInstruction) -> RenameResult | None:
        instruction = dyn.instruction
        source_logicals = instruction._sources    # precomputed source_registers()
        map_entries = self.map_table._entries     # inlined ExtendedMapTable.get
        source_mappings = [map_entries[logical] for logical in source_logicals]
        dest = instruction.dest_register

        elimination = None
        if dest is not None:
            elimination = self._try_eliminate(dyn, source_logicals, source_mappings, dest)
            if elimination is None and self.refcounts.free_count() == 0:
                return None  # must allocate, but no physical register is free

        # Map-table Mapping entries are frozen and expose preg/disp, so they
        # serve directly as source operands — no per-instruction copies.
        result = RenameResult(source_mappings)

        if elimination is not None:
            kind, shared_preg, out_disp, needs_reexec = elimination
            self.refcounts.share(shared_preg)
            previous = self.map_table.set(dest, shared_preg, out_disp)
            result.dest_preg = shared_preg
            result.dest_disp = out_disp
            result.prev_dest_preg = previous.preg
            result.eliminated = True
            result.elim_kind = kind
            result.needs_reexecution = needs_reexec
            self._group_eliminated_logicals.add(dest)
            self._count_elimination(kind)
            return result

        if dest is not None:
            new_preg = self.refcounts.allocate()
            previous = self.map_table.set(dest, new_preg, 0)
            result.dest_preg = new_preg
            result.prev_dest_preg = previous.preg
            result.allocated = True
        for mapping in source_mappings:
            if mapping.disp:
                # Only displaced operands can cost fusion latency; the common
                # zero-displacement case skips the model call entirely.
                result.fusion_extra_latency = fusion_extra_latency(
                    instruction.opcode,
                    [m.disp for m in source_mappings],
                    self.config,
                )
                break
        self._insert_it_entries(dyn, source_mappings, result)
        return result

    def commit(self, result: RenameResult) -> None:
        if result.prev_dest_preg is not None:
            self.refcounts.release(result.prev_dest_preg)

    def mapping_snapshot(self) -> list[tuple[int, int]]:
        return self.map_table.snapshot()

    # ------------------------------------------------------------------
    # Elimination decisions
    # ------------------------------------------------------------------

    def _count_elimination(self, kind: str) -> None:
        key = {
            "move": "eliminated_moves",
            "cf": "eliminated_folds",
            "cse": "eliminated_cse",
            "ra": "eliminated_ra",
        }[kind]
        self.stats[key] += 1

    def _try_eliminate(
        self,
        dyn: DynamicInstruction,
        source_logicals: tuple[int, ...],
        source_mappings: list[Mapping],
        dest: int | None,
    ) -> tuple[str, int, int, bool] | None:
        """Decide whether the instruction can be collapsed.

        Returns ``(kind, shared_preg, out_disp, needs_reexecution)`` or None.
        """
        if dest is None:
            return None
        instruction = dyn.instruction
        spec = instruction.spec
        config = self.config

        if spec.is_reg_imm_add:
            # Only register-immediate additions can fold (the check that used
            # to head _try_fold).
            fold = self._try_fold(instruction, source_logicals, source_mappings)
            if fold is not None:
                return fold

        # Inlined _it_lookup_eligible.
        if config.enable_integration and (
                spec.is_load
                or (config.integration_policy == IT_POLICY_FULL
                    and spec.op_class in (OpClass.ALU, OpClass.SHIFT))):
            return self._try_integrate(dyn, source_mappings)
        return None

    def _try_fold(
        self,
        instruction: Instruction,
        source_logicals: tuple[int, ...],
        source_mappings: list[Mapping],
    ) -> tuple[str, int, int, bool] | None:
        """RENO_ME / RENO_CF: collapse moves and register-immediate additions."""
        config = self.config
        spec = instruction.spec
        is_move = spec.is_move
        if is_move:
            if not (config.enable_move_elimination or config.enable_constant_folding):
                return None
        elif not config.enable_constant_folding:
            return None

        source_logical = source_logicals[0]
        if (source_logical in self._group_eliminated_logicals
                and not config.allow_dependent_eliminations):
            # Two dependent eliminations in one rename group are disallowed
            # to bound the output-selection mux complexity (§3.2).
            self.stats["dependent_elimination_blocks"] += 1
            return None

        source = source_mappings[0]
        new_disp = source.disp + instruction.folded_displacement
        if not fits_signed(new_disp, config.displacement_bits):
            self.stats["overflow_cancellations"] += 1
            return None
        kind = "move" if is_move else "cf"
        return (kind, source.preg, new_disp, False)

    def _try_integrate(
        self, dyn: DynamicInstruction, source_mappings: list[Mapping]
    ) -> tuple[str, int, int, bool] | None:
        """RENO_CSE+RA: probe the integration table for an existing value."""
        instruction = dyn.instruction
        key = self._it_key(instruction, source_mappings)
        self.stats["it_lookups"] += 1
        entry = self.integration_table.lookup(key)
        if entry is None:
            return None
        if not self.refcounts.is_live(entry.out_preg):
            return None
        # Stand-in for the pre-retirement re-execution check: integrate only
        # when the shared register will hold the architecturally correct
        # value.  A mismatch corresponds to a squashed integration.
        if entry.value is None or dyn.result is None or entry.value != dyn.result:
            self.stats["it_value_mismatches"] += 1
            return None
        self.stats["it_hits"] += 1
        kind = "ra" if entry.origin == "store" else "cse"
        needs_reexec = instruction.spec.is_load
        return (kind, entry.out_preg, entry.out_disp, needs_reexec)

    # ------------------------------------------------------------------
    # Integration-table maintenance
    # ------------------------------------------------------------------

    def _it_lookup_eligible(self, instruction: Instruction) -> bool:
        """Which instructions probe the IT under the configured policy."""
        if instruction.spec.is_load:
            return True
        if self.config.integration_policy != IT_POLICY_FULL:
            return False
        return instruction.spec.op_class in (OpClass.ALU, OpClass.SHIFT)

    def _it_key(self, instruction: Instruction, source_mappings: list[Mapping]) -> tuple:
        inputs = tuple((mapping.preg, mapping.disp) for mapping in source_mappings)
        if instruction.spec.is_reg_imm_add:
            return IntegrationTable.make_key(
                _CANONICAL_ADD, instruction.folded_displacement, inputs
            )
        return IntegrationTable.make_key(instruction.opcode.value, instruction.imm, inputs)

    def _insert_it_entries(
        self,
        dyn: DynamicInstruction,
        source_mappings: list[Mapping],
        result: RenameResult,
    ) -> None:
        """Create IT entries for a non-eliminated instruction."""
        if self.integration_table is None:
            return
        instruction = dyn.instruction
        policy_full = self.config.integration_policy == IT_POLICY_FULL

        spec = instruction.spec
        if spec.is_store:
            self._insert_reverse_store_entry(dyn, source_mappings)
            return
        if spec.is_load and result.dest_preg is not None:
            key = self._it_key(instruction, source_mappings)
            self._insert(IntegrationEntry(
                key=key, out_preg=result.dest_preg, out_disp=0,
                origin="load", value=dyn.result,
            ))
            return
        if not policy_full or result.dest_preg is None:
            return
        op_class = spec.op_class
        if op_class not in (OpClass.ALU, OpClass.SHIFT):
            return
        key = self._it_key(instruction, source_mappings)
        self._insert(IntegrationEntry(
            key=key, out_preg=result.dest_preg, out_disp=0,
            origin="alu", value=dyn.result,
        ))
        if spec.is_reg_imm_add:
            # Reverse entry: lets the matching future increment share the
            # pre-decrement register (bootstraps memory bypassing across
            # calls when constant folding is disabled).
            source = source_mappings[0]
            reverse_key = IntegrationTable.make_key(
                _CANONICAL_ADD,
                -instruction.folded_displacement,
                ((result.dest_preg, 0),),
            )
            self._insert(IntegrationEntry(
                key=reverse_key, out_preg=source.preg, out_disp=source.disp,
                origin="alu", value=dyn.rs1_value,
            ))

    def _insert_reverse_store_entry(
        self, dyn: DynamicInstruction, source_mappings: list[Mapping]
    ) -> None:
        """Stores create entries shaped like the load that will read the value."""
        instruction = dyn.instruction
        load_opcode = _STORE_TO_LOAD[instruction.opcode]
        base_mapping = source_mappings[0]            # rs1 is the base register
        data_mapping = source_mappings[1]            # rs2 is the data register
        key = IntegrationTable.make_key(
            load_opcode.value, instruction.imm, ((base_mapping.preg, base_mapping.disp),)
        )
        # Sharing the data register is only correct if the future load reads
        # back exactly the data register's value.  Recording that value here
        # lets the hit-time check reject truncating/size-mismatched cases.
        self._insert(IntegrationEntry(
            key=key, out_preg=data_mapping.preg, out_disp=data_mapping.disp,
            origin="store", value=dyn.store_value,
        ))

    def _insert(self, entry: IntegrationEntry) -> None:
        self.integration_table.insert(entry)
        self.stats["it_insertions"] += 1

    def _on_register_freed(self, preg: int) -> None:
        if self.integration_table is not None:
            self.integration_table.invalidate_preg(preg)
