"""The RENO renamer.

This is the paper's mechanism: a register renamer that, in addition to the
conventional map-table update, recognises instructions whose output value
already exists (or can be described as an existing value plus an immediate)
and collapses them out of the execution stream by *sharing* physical
registers:

* moves (RENO_ME) and register-immediate additions (RENO_CF) short-circuit
  the map table, the latter by accumulating displacements in the extended
  ``[p : d]`` map-table format;
* loads (and, in the full-integration policy, ALU operations) whose dataflow
  signature hits in the integration table share the physical register that
  already holds their value (RENO_CSE and RENO_RA).

The renamer operates purely on physical register *names* and immediates: it
never reads the physical register file.  The only value information it keeps
is carried inside integration-table entries, where it stands in for the
pre-retirement re-execution check of the original register-integration
proposal (see DESIGN.md, "Validation strategy").
"""

from __future__ import annotations

from repro.core.config import IT_POLICY_FULL, RenoConfig
from repro.core.fusion import fusion_extra_latency
from repro.core.integration import IntegrationEntry, IntegrationTable
from repro.core.maptable import ExtendedMapTable, Mapping
from repro.core.refcount import ReferenceCountManager
from repro.functional.trace import DynamicInstruction
from repro.isa.instruction import (
    DF_IT_ALU,
    DF_LOAD,
    DF_MOVE,
    DF_REG_IMM_ADD,
    DF_STORE,
    Instruction,
    decode_op,
)
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import NUM_LOGICAL_REGS
from repro.isa.semantics import fits_signed
from repro.uarch.rename import RenameResult, Renamer

#: Store opcode → the load opcode a reverse (memory bypassing) entry targets.
_STORE_TO_LOAD = {
    Opcode.ST: Opcode.LD,
    Opcode.STW: Opcode.LDW,
    Opcode.STB: Opcode.LDBU,
}

#: Canonical key opcode for all register-immediate additions, so that
#: ``addi r, 16`` matches a reverse entry created by ``subi r, 16``.
_CANONICAL_ADD = "addi"

#: Memory-instruction mask (loads and stores always maintain IT entries).
_DF_MEM = DF_LOAD | DF_STORE

#: Elimination kind → stats counter key (module-level: built once).
_ELIM_STATS_KEYS = {
    "move": "eliminated_moves",
    "cf": "eliminated_folds",
    "cse": "eliminated_cse",
    "ra": "eliminated_ra",
}


class RenoRenamer(Renamer):
    """Renamer implementing RENO_ME, RENO_CF and RENO_CSE+RA."""

    def __init__(self, num_physical_regs: int, config: RenoConfig | None = None):
        self.config = config or RenoConfig()
        self.config.validate()
        if num_physical_regs <= NUM_LOGICAL_REGS:
            raise ValueError("need more physical than logical registers")
        self.num_physical_regs = num_physical_regs
        self.map_table = ExtendedMapTable()
        self.integration_table: IntegrationTable | None = (
            IntegrationTable(self.config.it_entries, self.config.it_associativity)
            if self.config.enable_integration else None
        )
        self.refcounts = ReferenceCountManager(
            num_physical_regs, NUM_LOGICAL_REGS, on_free=self._on_register_freed
        )
        self._group_eliminated_logicals: set[int] = set()
        # Hot-path precomputation: config knobs as plain attributes, the
        # refcount free list for O(1) "can allocate" checks, and one shared
        # zero-displacement Mapping per physical register (mappings are
        # frozen, so the common ``[p : 0]`` case never allocates).
        config = self.config
        self._policy_full = config.integration_policy == IT_POLICY_FULL
        self._fold_moves = config.enable_move_elimination or config.enable_constant_folding
        self._fold_adds = config.enable_constant_folding
        self._allow_dependent = config.allow_dependent_eliminations
        self._disp_bits = config.displacement_bits
        self._free_list = self.refcounts._free
        self._zero_maps = [Mapping(preg) for preg in range(num_physical_regs)]
        # Decoded-flag mask of instructions that could possibly be
        # eliminated under this configuration; anything else skips the
        # _try_eliminate call entirely (no stats are counted on those
        # paths, so the gate is exact).
        elig = 0
        if self._fold_moves or self._fold_adds:
            elig |= DF_REG_IMM_ADD
        if self.integration_table is not None:
            elig |= DF_LOAD
            if self._policy_full:
                elig |= DF_IT_ALU
        self._elig_mask = elig
        self.stats: dict[str, int] = {
            "eliminated_moves": 0,
            "eliminated_folds": 0,
            "eliminated_cse": 0,
            "eliminated_ra": 0,
            "overflow_cancellations": 0,
            "dependent_elimination_blocks": 0,
            "it_lookups": 0,
            "it_hits": 0,
            "it_insertions": 0,
            "it_value_mismatches": 0,
        }

    # ------------------------------------------------------------------
    # Renamer interface
    # ------------------------------------------------------------------

    def free_register_count(self) -> int:
        return self.refcounts.free_count()

    def begin_group(self) -> None:
        # Reuse one set for the life of the renamer (this runs every cycle).
        eliminated = self._group_eliminated_logicals
        if eliminated:
            eliminated.clear()

    def end_group(self) -> None:
        # Group state is reset lazily by the next begin_group.
        pass

    def rename_next(self, dyn: DynamicInstruction, op: tuple | None = None) -> RenameResult | None:
        if op is None:
            op = decode_op(dyn.instruction)
        source_logicals = op[9]                   # decoded source registers
        map_entries = self.map_table._entries     # inlined ExtendedMapTable.get
        source_mappings = [map_entries[logical] for logical in source_logicals]
        dest = op[4]                              # decoded dest register (-1 = none)

        elimination = None
        if dest >= 0:
            if op[0] & self._elig_mask:
                elimination = self._try_eliminate(dyn, op, source_mappings, dest)
            if elimination is None and not self._free_list:
                return None  # must allocate, but no physical register is free

        # Map-table Mapping entries are frozen and expose preg/disp, so they
        # serve directly as source operands — no per-instruction copies.
        # The result record is built through __new__ + direct slot stores:
        # same fields as RenameResult(source_mappings), minus the generated
        # __init__ frame (this runs once per renamed instruction).
        result = RenameResult.__new__(RenameResult)
        result.sources = source_mappings
        result.dest_preg = None
        result.dest_disp = 0
        result.prev_dest_preg = None
        result.allocated = False
        result.eliminated = False
        result.elim_kind = None
        result.needs_reexecution = False
        result.fusion_extra_latency = 0

        if elimination is not None:
            kind, shared_preg, out_disp, needs_reexec = elimination
            # Inlined ReferenceCountManager.share (once per elimination).
            refcounts = self.refcounts
            counts = refcounts.counts
            count = counts[shared_preg]
            if count <= 0:
                refcounts.share(shared_preg)      # raises the underflow error
            else:
                count += 1
                counts[shared_preg] = count
                refcounts.total_shares += 1
                if count > refcounts.max_observed_count:
                    refcounts.max_observed_count = count
            # Inlined ExtendedMapTable.set (zero displacements reuse the
            # shared per-register mapping).
            previous = map_entries[dest]
            map_entries[dest] = (self._zero_maps[shared_preg] if out_disp == 0
                                 else Mapping(shared_preg, out_disp))
            result.dest_preg = shared_preg
            result.dest_disp = out_disp
            result.prev_dest_preg = previous.preg
            result.eliminated = True
            result.elim_kind = kind
            result.needs_reexecution = needs_reexec
            self._group_eliminated_logicals.add(dest)
            self.stats[_ELIM_STATS_KEYS[kind]] += 1
            return result

        if dest >= 0:
            # Inlined ReferenceCountManager.allocate (the earlier free-list
            # check guarantees a register is available).
            refcounts = self.refcounts
            new_preg = self._free_list.popleft()
            if refcounts.counts[new_preg] != 0:
                self._free_list.appendleft(new_preg)
                refcounts.allocate()              # raises the invariant error
            refcounts.counts[new_preg] = 1
            refcounts.total_allocations += 1
            previous = map_entries[dest]
            map_entries[dest] = self._zero_maps[new_preg]  # inlined set(dest, p, 0)
            result.dest_preg = new_preg
            result.prev_dest_preg = previous.preg
            result.allocated = True
        for mapping in source_mappings:
            if mapping.disp:
                # Only displaced operands can cost fusion latency; the common
                # zero-displacement case skips the model call entirely.
                result.fusion_extra_latency = fusion_extra_latency(
                    op[6],
                    [m.disp for m in source_mappings],
                    self.config,
                )
                break
        if self.integration_table is not None and (
                op[0] & _DF_MEM or self._policy_full):
            # Loads/stores always create entries; plain ALU work only does
            # under the full policy — hoisting the test here skips the call
            # for the (majority) plain-ALU case of the loads-only policy.
            self._insert_it_entries(dyn, op, source_mappings, result)
        return result

    def commit(self, result: RenameResult) -> None:
        prev = result.prev_dest_preg
        if prev is None:
            return
        # Inlined ReferenceCountManager.release (this runs once per committed
        # instruction): drop one reference, free the register and invalidate
        # the IT entries naming it when the count reaches zero.
        counts = self.refcounts.counts
        count = counts[prev]
        if count <= 0:
            self.refcounts.release(prev)      # raises the underflow error
        elif count == 1:
            counts[prev] = 0
            self._free_list.append(prev)
            table = self.integration_table
            if table is not None and prev in table._preg_index:
                table.invalidate_preg(prev)
        else:
            counts[prev] = count - 1

    def mapping_snapshot(self) -> list[tuple[int, int]]:
        return self.map_table.snapshot()

    # ------------------------------------------------------------------
    # Elimination decisions
    # ------------------------------------------------------------------

    def _try_eliminate(
        self,
        dyn: DynamicInstruction,
        op: tuple,
        source_mappings: list[Mapping],
        dest: int,
    ) -> tuple[str, int, int, bool] | None:
        """Decide whether the instruction can be collapsed.

        Returns ``(kind, shared_preg, out_disp, needs_reexecution)`` or None.
        """
        flags = op[0]
        if flags & DF_REG_IMM_ADD:
            # Only register-immediate additions can fold (RENO_ME / RENO_CF).
            if flags & DF_MOVE:
                fold_ok = self._fold_moves
                kind = "move"
            else:
                fold_ok = self._fold_adds
                kind = "cf"
            if fold_ok:
                if (op[9][0] in self._group_eliminated_logicals
                        and not self._allow_dependent):
                    # Two dependent eliminations in one rename group are
                    # disallowed to bound the output-selection mux
                    # complexity (§3.2).
                    self.stats["dependent_elimination_blocks"] += 1
                else:
                    source = source_mappings[0]
                    new_disp = source.disp + op[7]    # folded displacement
                    if fits_signed(new_disp, self._disp_bits):
                        return (kind, source.preg, new_disp, False)
                    self.stats["overflow_cancellations"] += 1

        # Inlined _it_lookup_eligible.
        if self.integration_table is not None and (
                flags & DF_LOAD
                or (self._policy_full and flags & DF_IT_ALU)):
            return self._try_integrate(dyn, op, source_mappings)
        return None

    def _try_fold(
        self,
        instruction: Instruction,
        source_logicals: tuple[int, ...],
        source_mappings: list[Mapping],
    ) -> tuple[str, int, int, bool] | None:
        """RENO_ME / RENO_CF fold check (compat wrapper for unit tests).

        The pipeline path runs the same decision inlined in
        :meth:`_try_eliminate`; this wrapper keeps the original standalone
        signature for tests that probe folding in isolation.
        """
        spec = instruction.spec
        if not spec.is_reg_imm_add:
            return None
        is_move = spec.is_move
        if is_move:
            if not self._fold_moves:
                return None
        elif not self._fold_adds:
            return None
        if (source_logicals[0] in self._group_eliminated_logicals
                and not self._allow_dependent):
            self.stats["dependent_elimination_blocks"] += 1
            return None
        source = source_mappings[0]
        new_disp = source.disp + instruction.folded_displacement
        if not fits_signed(new_disp, self._disp_bits):
            self.stats["overflow_cancellations"] += 1
            return None
        return ("move" if is_move else "cf", source.preg, new_disp, False)

    def _try_integrate(
        self, dyn: DynamicInstruction, op: tuple, source_mappings: list[Mapping]
    ) -> tuple[str, int, int, bool] | None:
        """RENO_CSE+RA: probe the integration table for an existing value."""
        key = self._it_key(op, source_mappings)
        stats = self.stats
        stats["it_lookups"] += 1
        entry = self.integration_table.lookup(key)
        if entry is None:
            return None
        if self.refcounts.counts[entry.out_preg] <= 0:   # inlined is_live
            return None
        # Stand-in for the pre-retirement re-execution check: integrate only
        # when the shared register will hold the architecturally correct
        # value.  A mismatch corresponds to a squashed integration.
        if entry.value is None or dyn.result is None or entry.value != dyn.result:
            stats["it_value_mismatches"] += 1
            return None
        stats["it_hits"] += 1
        kind = "ra" if entry.origin == "store" else "cse"
        return (kind, entry.out_preg, entry.out_disp, bool(op[0] & DF_LOAD))

    # ------------------------------------------------------------------
    # Integration-table maintenance
    # ------------------------------------------------------------------

    def _it_lookup_eligible(self, instruction: Instruction) -> bool:
        """Which instructions probe the IT under the configured policy."""
        if instruction.spec.is_load:
            return True
        if self.config.integration_policy != IT_POLICY_FULL:
            return False
        return instruction.spec.op_class in (OpClass.ALU, OpClass.SHIFT)

    def _it_key(self, op: tuple, source_mappings: list[Mapping]) -> tuple:
        # Inlined IntegrationTable.make_key: the signature is the plain
        # (opcode, imm, inputs) triple; the 0/1/2-source cases are unrolled.
        count = len(source_mappings)
        if count == 1:
            mapping = source_mappings[0]
            inputs = ((mapping.preg, mapping.disp),)
        elif count == 2:
            first, second = source_mappings
            inputs = ((first.preg, first.disp), (second.preg, second.disp))
        else:
            inputs = tuple((m.preg, m.disp) for m in source_mappings)
        if op[0] & DF_REG_IMM_ADD:
            return (_CANONICAL_ADD, op[7], inputs)
        return (op[6].value, op[5], inputs)

    def _insert_it_entries(
        self,
        dyn: DynamicInstruction,
        op: tuple,
        source_mappings: list[Mapping],
        result: RenameResult,
    ) -> None:
        """Create IT entries for a non-eliminated instruction.

        The caller has already checked that the integration table exists.
        """
        flags = op[0]
        if flags & DF_STORE:
            self._insert_reverse_store_entry(dyn, op, source_mappings)
            return
        if flags & DF_LOAD and result.dest_preg is not None:
            key = self._it_key(op, source_mappings)
            # Inlined _insert (one insertion per executed load).
            self.integration_table.insert(IntegrationEntry(
                key=key, out_preg=result.dest_preg, out_disp=0,
                origin="load", value=dyn.result,
            ))
            self.stats["it_insertions"] += 1
            return
        if not self._policy_full or result.dest_preg is None:
            return
        if not flags & DF_IT_ALU:
            return
        key = self._it_key(op, source_mappings)
        self._insert(IntegrationEntry(
            key=key, out_preg=result.dest_preg, out_disp=0,
            origin="alu", value=dyn.result,
        ))
        if flags & DF_REG_IMM_ADD:
            # Reverse entry: lets the matching future increment share the
            # pre-decrement register (bootstraps memory bypassing across
            # calls when constant folding is disabled).
            source = source_mappings[0]
            reverse_key = IntegrationTable.make_key(
                _CANONICAL_ADD,
                -op[7],
                ((result.dest_preg, 0),),
            )
            self._insert(IntegrationEntry(
                key=reverse_key, out_preg=source.preg, out_disp=source.disp,
                origin="alu", value=dyn.rs1_value,
            ))

    def _insert_reverse_store_entry(
        self, dyn: DynamicInstruction, op: tuple, source_mappings: list[Mapping]
    ) -> None:
        """Stores create entries shaped like the load that will read the value."""
        load_opcode = _STORE_TO_LOAD[op[6]]
        base_mapping = source_mappings[0]            # rs1 is the base register
        data_mapping = source_mappings[1]            # rs2 is the data register
        key = (load_opcode.value, op[5], ((base_mapping.preg, base_mapping.disp),))
        # Sharing the data register is only correct if the future load reads
        # back exactly the data register's value.  Recording that value here
        # lets the hit-time check reject truncating/size-mismatched cases.
        # (_insert inlined: one insertion per executed store.)
        self.integration_table.insert(IntegrationEntry(
            key=key, out_preg=data_mapping.preg, out_disp=data_mapping.disp,
            origin="store", value=dyn.store_value,
        ))
        self.stats["it_insertions"] += 1

    def _insert(self, entry: IntegrationEntry) -> None:
        self.integration_table.insert(entry)
        self.stats["it_insertions"] += 1

    def _on_register_freed(self, preg: int) -> None:
        if self.integration_table is not None:
            self.integration_table.invalidate_preg(preg)
