"""Fusion latency model for RENO_CF (§3.3 of the paper).

A folded register-immediate addition is deferred and *fused* into the
instruction that consumes it: the consumer's operand is ``preg + disp``
rather than ``preg``.  The paper's execution-core changes make the common
fusions free:

* address generation (loads/stores) uses a 3-input carry-save adder,
* additions fused to additions likewise use a 3-input adder,
* the store-data and branch-direction paths get their own 2-input adders.

Fusions into shifters, multipliers/dividers and logical units cost one extra
cycle, as does the rare case where *both* register inputs of a
register-register operation carry displacements.
"""

from __future__ import annotations

from repro.isa.opcodes import OpClass, Opcode
from repro.core.config import RenoConfig

#: Opcodes whose primary operation is an addition/subtraction/compare, and
#: can therefore absorb a fused displacement with a 3-input adder.
_ADDITIVE_OPCODES = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.ADDI, Opcode.SUBI, Opcode.LDAH, Opcode.MOV,
    Opcode.CMPEQ, Opcode.CMPLT, Opcode.CMPLE, Opcode.CMPULT,
    Opcode.CMPEQI, Opcode.CMPLTI, Opcode.CMPLEI, Opcode.CMPULTI,
})


def fusion_extra_latency(opcode: Opcode, source_disps: list[int], config: RenoConfig) -> int:
    """Extra execute cycles the consumer pays for its fused displacement(s).

    Args:
        opcode: The consumer's opcode.
        source_disps: Displacements attached to the consumer's register
            sources (in operand order).
        config: The RENO configuration (penalty knobs).

    Returns:
        Additional execution cycles (0 in the common case).
    """
    displaced = [disp for disp in source_disps if disp]
    if not displaced:
        return 0
    if config.fusion_penalty_all_ops:
        return config.fusion_penalty_all_ops

    from repro.isa.opcodes import spec_for

    spec = spec_for(opcode)
    op_class = spec.op_class

    # Memory address generation, branch direction and store data all have
    # dedicated adders; a single displaced operand is free.
    if op_class in (OpClass.LOAD, OpClass.STORE, OpClass.BRANCH, OpClass.JUMP,
                    OpClass.CALL, OpClass.RET):
        return 0

    # Shifts, multiplies, divides and logical operations cannot absorb the
    # addition in the same cycle.
    if op_class in (OpClass.SHIFT, OpClass.MUL, OpClass.DIV):
        return config.fused_nonadd_penalty
    if opcode not in _ADDITIVE_OPCODES:
        return config.fused_nonadd_penalty

    # Additive consumer: free with a 3-input adder unless both register
    # inputs carry displacements (needs the augmented ALU, one extra cycle).
    if len(displaced) >= 2:
        return config.fused_double_disp_penalty
    return 0
