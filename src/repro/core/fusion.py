"""Fusion latency model for RENO_CF (§3.3 of the paper).

A folded register-immediate addition is deferred and *fused* into the
instruction that consumes it: the consumer's operand is ``preg + disp``
rather than ``preg``.  The paper's execution-core changes make the common
fusions free:

* address generation (loads/stores) uses a 3-input carry-save adder,
* additions fused to additions likewise use a 3-input adder,
* the store-data and branch-direction paths get their own 2-input adders.

Fusions into shifters, multipliers/dividers and logical units cost one extra
cycle, as does the rare case where *both* register inputs of a
register-register operation carry displacements.
"""

from __future__ import annotations

from repro.isa.opcodes import OPCODE_SPECS, OpClass, Opcode, spec_for
from repro.core.config import RenoConfig

#: Opcodes whose primary operation is an addition/subtraction/compare, and
#: can therefore absorb a fused displacement with a 3-input adder.
_ADDITIVE_OPCODES = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.ADDI, Opcode.SUBI, Opcode.LDAH, Opcode.MOV,
    Opcode.CMPEQ, Opcode.CMPLT, Opcode.CMPLE, Opcode.CMPULT,
    Opcode.CMPEQI, Opcode.CMPLTI, Opcode.CMPLEI, Opcode.CMPULTI,
})

#: Fusion cost categories, precomputed per opcode so the per-instruction
#: decision is one dict lookup: FREE has a dedicated adder, NONADD pays the
#: non-additive penalty, ADDITIVE is free unless both inputs are displaced.
_FREE, _NONADD, _ADDITIVE = 0, 1, 2


def _category(opcode: Opcode) -> int:
    op_class = spec_for(opcode).op_class
    if op_class in (OpClass.LOAD, OpClass.STORE, OpClass.BRANCH, OpClass.JUMP,
                    OpClass.CALL, OpClass.RET):
        return _FREE
    if op_class in (OpClass.SHIFT, OpClass.MUL, OpClass.DIV):
        return _NONADD
    if opcode not in _ADDITIVE_OPCODES:
        return _NONADD
    return _ADDITIVE


_CATEGORIES: dict[Opcode, int] = {opcode: _category(opcode) for opcode in OPCODE_SPECS}


def fusion_extra_latency(opcode: Opcode, source_disps: list[int], config: RenoConfig) -> int:
    """Extra execute cycles the consumer pays for its fused displacement(s).

    Args:
        opcode: The consumer's opcode.
        source_disps: Displacements attached to the consumer's register
            sources (in operand order).
        config: The RENO configuration (penalty knobs).

    Returns:
        Additional execution cycles (0 in the common case).
    """
    displaced = 0
    for disp in source_disps:
        if disp:
            displaced += 1
    if not displaced:
        return 0
    if config.fusion_penalty_all_ops:
        return config.fusion_penalty_all_ops

    category = _CATEGORIES[opcode]
    # Memory address generation, branch direction and store data all have
    # dedicated adders; a single displaced operand is free.
    if category == _FREE:
        return 0
    # Shifts, multiplies, divides and logical operations cannot absorb the
    # addition in the same cycle.
    if category == _NONADD:
        return config.fused_nonadd_penalty
    # Additive consumer: free with a 3-input adder unless both register
    # inputs carry displacements (needs the augmented ALU, one extra cycle).
    if displaced >= 2:
        return config.fused_double_disp_penalty
    return 0
