"""One-call simulation helpers combining the functional and timing models.

These are the functions examples, tests and the experiment harness use:

* :func:`simulate` — run a :class:`~repro.isa.program.Program` on a machine
  configuration, optionally with RENO enabled, and return both the functional
  and the timing results (with the architectural-equivalence check applied).
* :func:`simulate_workload` — the same, starting from a workload name.
* :func:`run_config_comparison` — run one workload under several RENO
  configurations (sharing the functional trace) and return per-config results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RenoConfig
from repro.core.renamer import RenoRenamer
from repro.functional.simulator import ExecutionResult, FunctionalSimulator
from repro.isa.program import Program
from repro.uarch.config import MachineConfig
from repro.uarch.core import Pipeline, SimResult
from repro.workloads.base import Workload, get_workload


class ArchitecturalMismatchError(Exception):
    """Raised when the timing simulator's final state disagrees with the
    functional simulator's (this would indicate a renaming/RENO bug)."""


@dataclass
class SimulationOutcome:
    """Functional + timing results for one (program, machine, RENO) run.

    Outcomes loaded from the experiment cache (see
    :mod:`repro.harness.cache`) are *slim*: ``program`` and ``functional``
    are None (the cache stores only the timing result), and ``cached`` is
    True.  All report-facing accessors (``stats``, ``ipc``, ``cycles``,
    ``timing.timing_records``) behave identically for slim outcomes.
    """

    program: Program | None
    functional: ExecutionResult | None
    timing: SimResult
    reno_config: RenoConfig | None = None
    cached: bool = False

    @property
    def stats(self):
        return self.timing.stats

    @property
    def ipc(self) -> float:
        return self.timing.ipc

    @property
    def cycles(self) -> int:
        return self.timing.cycles


def simulate(
    program: Program,
    machine: MachineConfig | None = None,
    reno: RenoConfig | None = None,
    *,
    trace: ExecutionResult | None = None,
    collect_timing: bool = False,
    record_stats: bool = False,
    max_instructions: int = 2_000_000,
    verify: bool = True,
    backend: str | None = None,
) -> SimulationOutcome:
    """Run ``program`` through the functional and timing simulators.

    Args:
        program: The assembled program.
        machine: Machine configuration (defaults to the paper's 4-wide core).
        reno: RENO configuration, or None for the conventional baseline.
        trace: Optionally reuse an existing functional run (saves time when
            comparing several configurations on the same workload).
        collect_timing: Collect per-instruction timing records for
            critical-path analysis.
        record_stats: Record per-structure occupancy histograms and issue
            utilization (``outcome.stats.occupancy``); see
            :mod:`repro.uarch.observe`.
        max_instructions: Functional-simulation budget.
        verify: Check that the timing simulator's final architectural state
            matches the functional simulator's.
        backend: Cycle-loop backend name for the timing run (``"python"``,
            ``"compiled"``), or None to consult ``$REPRO_BACKEND`` and
            default to ``python`` — see :mod:`repro.uarch.backend`.
            Results are backend-independent; only speed changes.

    Returns:
        A :class:`SimulationOutcome`.
    """
    machine = machine or MachineConfig.default_4wide()
    functional = trace or FunctionalSimulator(program, max_instructions).run()
    renamer = RenoRenamer(machine.num_physical_regs, reno) if reno is not None else None
    pipeline = Pipeline(
        program,
        functional.trace,
        machine,
        renamer=renamer,
        collect_timing=collect_timing,
        record_stats=record_stats,
        backend=backend,
    )
    timing = pipeline.run()
    if verify:
        expected = list(functional.state.snapshot())
        if timing.final_registers != expected:
            raise ArchitecturalMismatchError(
                f"{program.name}: timing-simulator architectural state diverged "
                f"(reno={'on' if reno else 'off'})"
            )
    return SimulationOutcome(program=program, functional=functional,
                             timing=timing, reno_config=reno)


def simulate_workload(
    workload: str | Workload,
    scale: int = 1,
    machine: MachineConfig | None = None,
    reno: RenoConfig | None = None,
    **kwargs,
) -> SimulationOutcome:
    """Build a workload's program and :func:`simulate` it."""
    if isinstance(workload, str):
        workload = get_workload(workload)
    program = workload.build(scale)
    return simulate(program, machine, reno, **kwargs)


def run_config_comparison(
    workload: str | Workload,
    configs: dict[str, RenoConfig | None],
    scale: int = 1,
    machine: MachineConfig | None = None,
    **kwargs,
) -> dict[str, SimulationOutcome]:
    """Run one workload under several RENO configurations.

    The functional trace is computed once and shared, so every configuration
    sees exactly the same dynamic instruction stream.
    """
    if isinstance(workload, str):
        workload = get_workload(workload)
    program = workload.build(scale)
    functional = FunctionalSimulator(program, kwargs.pop("max_instructions", 2_000_000)).run()
    outcomes: dict[str, SimulationOutcome] = {}
    for label, reno in configs.items():
        outcomes[label] = simulate(
            program, machine, reno, trace=functional, **kwargs
        )
    return outcomes
