"""The integration table (IT) implementing RENO_CSE+RA.

The IT treats the physical register file as a value cache.  Each entry
describes one physical register in terms of the *register dataflow* of the
instruction that created the value:

    <opcode/imm, [p_in1 : d_in1], [p_in2 : d_in2]  →  [p_out : d_out]>

When a new instruction renames, the IT is probed with the instruction's
opcode, immediate and (extended) input mappings; a hit means an instruction
with identical dataflow already produced the value, so the new instruction's
output can simply share the existing physical register.

Stores create *reverse* entries shaped like the load that will read the
stored value (speculative memory bypassing, the dynamic analogue of register
allocation); register-immediate additions can create reverse entries for the
matching subtraction, which lets memory bypassing bootstrap across call
frames when constant folding is disabled.

Entries are invalidated when any physical register they name is reclaimed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

#: Opcode-string → CRC32, memoised so set indexing never re-encodes.
_OPCODE_HASHES: dict[str, int] = {}


@dataclass
class IntegrationEntry:
    """One IT tuple.

    Attributes:
        key: Hashable signature ``(opcode, imm, inputs)`` where inputs are
            (preg, disp) pairs.
        out_preg / out_disp: The output mapping a hit will short-circuit to.
        origin: ``"load"``, ``"store"`` (reverse entry), or ``"alu"`` —
            distinguishes RENO_CSE hits from RENO_RA hits in statistics.
        value: Architectural value the output mapping evaluates to; used as
            the stand-in for pre-retirement re-execution (see DESIGN.md).
    """

    key: tuple
    out_preg: int
    out_disp: int
    origin: str
    value: int | None = None


class IntegrationTable:
    """A set-associative integration table with LRU replacement."""

    def __init__(self, entries: int = 512, associativity: int = 2):
        if entries % associativity:
            raise ValueError("entries must be a multiple of associativity")
        self.num_sets = entries // associativity
        self.associativity = associativity
        self._sets: list[list[IntegrationEntry]] = [[] for _ in range(self.num_sets)]
        # preg -> set indices that contain entries naming it (for invalidation).
        self._preg_index: dict[int, set[int]] = {}
        self.lookups = 0
        self.hits = 0
        self.insertions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------

    def _set_index(self, key: tuple) -> int:
        # Deliberately NOT built on ``hash()``: Python randomises string
        # hashes per process (PYTHONHASHSEED), which made IT set placement —
        # and therefore conflict evictions, hit counts and eliminations —
        # differ between otherwise identical runs.  Simulation results must
        # be reproducible across processes (parallel workers, cached reruns,
        # CI), so the set index is derived from a stable CRC32 mix instead.
        opcode, imm, inputs = key
        mixed = _OPCODE_HASHES.get(opcode)
        if mixed is None:
            mixed = _OPCODE_HASHES[opcode] = zlib.crc32(opcode.encode())
        mixed = mixed * 1000003 + imm
        for preg, disp in inputs:
            mixed = mixed * 1000003 + preg * 8191 + disp
        return mixed % self.num_sets

    def _register_pregs(self, entry: IntegrationEntry, set_index: int) -> None:
        index = self._preg_index
        out_preg = entry.out_preg
        bucket = index.get(out_preg)
        if bucket is None:
            index[out_preg] = {set_index}
        else:
            bucket.add(set_index)
        for operand in entry.key[2]:
            preg = operand[0]
            if preg != out_preg:
                bucket = index.get(preg)
                if bucket is None:
                    index[preg] = {set_index}
                else:
                    bucket.add(set_index)

    @staticmethod
    def make_key(opcode: str, imm: int, inputs: tuple[tuple[int, int], ...]) -> tuple:
        """Build an IT signature from opcode name, immediate and input mappings."""
        return (opcode, imm, inputs)

    # ------------------------------------------------------------------

    def lookup(self, key: tuple) -> IntegrationEntry | None:
        """Probe the table; a hit refreshes LRU order."""
        self.lookups += 1
        ways = self._sets[self._set_index(key)]
        for entry in ways:
            if entry.key == key:
                ways.remove(entry)
                ways.insert(0, entry)
                self.hits += 1
                return entry
        return None

    def insert(self, entry: IntegrationEntry) -> None:
        """Insert an entry, evicting the LRU way of its set if necessary."""
        self.insertions += 1
        set_index = self._set_index(entry.key)
        ways = self._sets[set_index]
        for existing in ways:
            if existing.key == entry.key:
                ways.remove(existing)
                break
        ways.insert(0, entry)
        if len(ways) > self.associativity:
            ways.pop()
        self._register_pregs(entry, set_index)

    def invalidate_preg(self, preg: int) -> int:
        """Drop every entry naming ``preg`` (called when the register is freed)."""
        set_indices = self._preg_index.pop(preg, None)
        if not set_indices:
            return 0
        removed = 0
        for set_index in set_indices:
            ways = self._sets[set_index]
            keep = []
            for entry in ways:
                names = {entry.out_preg} | {operand[0] for operand in entry.key[2]}
                if preg in names:
                    removed += 1
                else:
                    keep.append(entry)
            self._sets[set_index] = keep
        self.invalidations += removed
        return removed

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(ways) for ways in self._sets)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
