"""The extended RENO map table: ``logical → [physical : displacement]``.

RENO_CF extends the conventional ``l → [p]`` map table so that a logical
register can be described as *a physical register plus an immediate*.  The
interpretation of the mapping ``r → [p : d]`` is ``value(r) == value(p) + d``.
Register-immediate additions are folded by writing a new displacement instead
of allocating a register and executing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import NUM_LOGICAL_REGS


@dataclass(frozen=True, slots=True)
class Mapping:
    """One map-table entry: a physical register and a displacement."""

    preg: int
    disp: int = 0

    def displaced_by(self, extra: int) -> "Mapping":
        """The mapping with ``extra`` folded into the displacement."""
        return Mapping(self.preg, self.disp + extra)


class ExtendedMapTable:
    """Map table with per-entry displacements.

    In a machine without RENO_CF every displacement is zero and this degrades
    to the conventional map table.
    """

    def __init__(self, num_logical: int = NUM_LOGICAL_REGS):
        self.num_logical = num_logical
        self._entries: list[Mapping] = [Mapping(preg=index) for index in range(num_logical)]

    def get(self, logical: int) -> Mapping:
        """Current mapping of ``logical``."""
        return self._entries[logical]

    def set(self, logical: int, preg: int, disp: int = 0) -> Mapping:
        """Overwrite the mapping of ``logical``; returns the previous mapping."""
        previous = self._entries[logical]
        self._entries[logical] = Mapping(preg, disp)
        return previous

    def snapshot(self) -> list[tuple[int, int]]:
        """A copy of the table as (preg, disp) tuples, indexed by logical register."""
        return [(mapping.preg, mapping.disp) for mapping in self._entries]

    def pregs_in_use(self) -> set[int]:
        """The set of physical registers currently named by the table."""
        return {mapping.preg for mapping in self._entries}

    def nonzero_displacements(self) -> int:
        """How many entries currently carry a non-zero displacement."""
        return sum(1 for mapping in self._entries if mapping.disp != 0)
