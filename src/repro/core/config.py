"""RENO configuration: which optimizations run and how they divide labor."""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from repro.confighash import dataclass_digest

#: Integration-table policies for the division of labor studied in §4.4.
IT_POLICY_LOADS_ONLY = "loads_only"   # default RENO: the IT eliminates only loads
IT_POLICY_FULL = "full"               # full register integration: loads + ALU ops


@dataclass(frozen=True)
class RenoConfig:
    """Configuration of the RENO renamer.

    The default configuration is the paper's advocated one: RENO_ME and
    RENO_CF handle moves and register-immediate additions, and the
    integration table (RENO_CSE+RA) focuses on loads.

    Attributes:
        name: Label used in reports (e.g. ``"RENO"``, ``"CF+ME"``).
        enable_move_elimination: RENO_ME.
        enable_constant_folding: RENO_CF (subsumes move elimination when on).
        enable_integration: RENO_CSE+RA (register integration).
        integration_policy: Which instruction kinds the IT may eliminate
            (``"loads_only"`` or ``"full"``).
        it_entries / it_associativity: Integration-table geometry (the paper
            uses a 512-entry, 2-way table).
        displacement_bits: Width of the map-table displacement field (the
            Alpha ISA has 16-bit immediates, so 16 bits by default).
        allow_dependent_eliminations: Ablation switch — when True, RENO may
            eliminate two dependent instructions renamed in the same cycle
            (the paper disallows this to bound renaming complexity).
        fused_nonadd_penalty: Extra cycles when a fused displacement feeds a
            shifter, multiplier, divider or logical unit.
        fused_double_disp_penalty: Extra cycles when both register inputs of a
            register-register operation carry displacements.
        fusion_penalty_all_ops: Sensitivity knob from §3.3 — extra cycles
            charged for *every* fused operation (models 3-input adders not
            being free).
    """

    name: str = "RENO"
    enable_move_elimination: bool = True
    enable_constant_folding: bool = True
    enable_integration: bool = True
    integration_policy: str = IT_POLICY_LOADS_ONLY
    it_entries: int = 512
    it_associativity: int = 2
    displacement_bits: int = 16
    allow_dependent_eliminations: bool = False
    fused_nonadd_penalty: int = 1
    fused_double_disp_penalty: int = 1
    fusion_penalty_all_ops: int = 0

    def validate(self) -> None:
        if self.integration_policy not in (IT_POLICY_LOADS_ONLY, IT_POLICY_FULL):
            raise ValueError(f"unknown integration policy {self.integration_policy!r}")
        if self.it_entries % self.it_associativity:
            raise ValueError("it_entries must be a multiple of it_associativity")
        if self.displacement_bits < 4 or self.displacement_bits > 32:
            raise ValueError("displacement_bits out of range")

    # ------------------------------------------------------------------
    # Serialization / hashing (used by the experiment cache)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """All fields as a plain JSON-serialisable dictionary."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RenoConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)

    def digest(self) -> str:
        """Stable content hash of the *behavioural* fields (``name`` is a
        report label and is excluded; see :mod:`repro.confighash`)."""
        return dataclass_digest(self)

    # ------------------------------------------------------------------
    # Named configurations used throughout the evaluation
    # ------------------------------------------------------------------

    @staticmethod
    def reno_me() -> "RenoConfig":
        """Move elimination only (the oldest RENO-style optimization)."""
        return RenoConfig(name="ME", enable_constant_folding=False,
                          enable_integration=False)

    @staticmethod
    def reno_cf_me() -> "RenoConfig":
        """Move elimination + constant folding, no integration table."""
        return RenoConfig(name="CF+ME", enable_integration=False)

    @staticmethod
    def reno_default() -> "RenoConfig":
        """The paper's RENO: CF handles ALU ops, the IT handles loads."""
        return RenoConfig(name="RENO")

    @staticmethod
    def reno_full_integration() -> "RenoConfig":
        """RENO plus a full integration table (may also eliminate ALU ops)."""
        return RenoConfig(name="RENO+FullInteg", integration_policy=IT_POLICY_FULL)

    @staticmethod
    def integration_only_full() -> "RenoConfig":
        """Register integration alone (no CF), eliminating all kinds (§4.4)."""
        return RenoConfig(name="FullInteg", enable_move_elimination=False,
                          enable_constant_folding=False,
                          integration_policy=IT_POLICY_FULL)

    @staticmethod
    def integration_only_loads() -> "RenoConfig":
        """Register integration alone, restricted to loads (§4.4)."""
        return RenoConfig(name="LoadsInteg", enable_move_elimination=False,
                          enable_constant_folding=False,
                          integration_policy=IT_POLICY_LOADS_ONLY)

    def with_slow_fusion(self) -> "RenoConfig":
        """Copy where every fused operation pays an extra cycle (§3.3)."""
        return replace(self, name=f"{self.name}-slowfuse", fusion_penalty_all_ops=1)

    def with_it_geometry(self, entries: int, associativity: int = 2) -> "RenoConfig":
        """Copy with a different integration-table size (ablation)."""
        return replace(self, name=f"{self.name}-it{entries}", it_entries=entries,
                       it_associativity=associativity)

    def with_displacement_bits(self, bits: int) -> "RenoConfig":
        """Copy with a narrower/wider map-table displacement field (ablation)."""
        return replace(self, name=f"{self.name}-d{bits}", displacement_bits=bits)
