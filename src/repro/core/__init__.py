"""RENO: the rename-based instruction optimizer (the paper's contribution).

RENO is a modified MIPS-R10000 register renamer, augmented with physical
register reference counting, that uses map-table "short-circuiting" to
implement dynamic versions of classic static optimizations:

* **RENO_ME** — dynamic move elimination,
* **RENO_CF** — dynamic constant folding of register-immediate additions via
  an extended ``logical → [physical : displacement]`` map table and cheap
  operation fusion (3-input adders),
* **RENO_CSE+RA** — dynamic common-subexpression elimination and speculative
  memory bypassing (register integration) via an integration table.

The package provides:

* :class:`~repro.core.config.RenoConfig` — which optimizations are enabled and
  how (including the paper's division-of-labor policies),
* :class:`~repro.core.renamer.RenoRenamer` — the renamer that plugs into the
  :class:`repro.uarch.core.Pipeline`,
* :func:`~repro.core.simulator.simulate` /
  :func:`~repro.core.simulator.simulate_workload` — one-call helpers that run
  the functional simulator and the timing pipeline together.
"""

from repro.core.config import RenoConfig
from repro.core.refcount import ReferenceCountManager, ReferenceCountError
from repro.core.maptable import ExtendedMapTable, Mapping
from repro.core.integration import IntegrationTable, IntegrationEntry
from repro.core.fusion import fusion_extra_latency
from repro.core.renamer import RenoRenamer
from repro.core.simulator import simulate, simulate_workload, run_config_comparison

__all__ = [
    "RenoConfig",
    "ReferenceCountManager",
    "ReferenceCountError",
    "ExtendedMapTable",
    "Mapping",
    "IntegrationTable",
    "IntegrationEntry",
    "fusion_extra_latency",
    "RenoRenamer",
    "simulate",
    "simulate_workload",
    "run_config_comparison",
]
