"""Documentation checker — thin wrapper over ``repro.lint``.

The link/anchor/fence logic lives in :mod:`repro.lint.docs` (the ``docs``
checker of ``python -m repro lint``); this script keeps the historical
CLI — an optional root argument, non-zero exit with a problem list — for
the CI docs muscle memory and ``tests/docs/test_docs.py``.

Usage::

    python scripts/check_docs.py [root]
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.lint.docs import (  # noqa: E402 - after sys.path bootstrap
    check_docs_tree,
    markdown_files,
)


def main(argv: list[str] | None = None) -> int:
    """Check the docs tree; 0 = clean, 1 = problems (printed per line)."""
    root = Path(argv[0]).resolve() if argv else ROOT
    files = markdown_files(root)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1
    problems = check_docs_tree(root)
    if problems:
        print("\n".join(f"{p.path}:{p.line}: {p.message}" for p in problems))
        print(f"\n{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"docs ok: {len(files)} files, links resolve, python examples parse")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
