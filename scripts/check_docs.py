"""Documentation checker: relative links resolve, python fences parse.

Dependency-free stand-in for ``mkdocs build --strict``: walks every markdown
file in ``docs/`` plus the README, verifies that

* every relative markdown link/image points at an existing file (external
  ``http(s)``/``mailto`` links are skipped — CI must not depend on the
  network), including ``#anchor`` targets against the linked file's
  headings; and
* every fenced ``python`` code block is syntactically valid (``ast.parse``),
  so the examples in the cookbook cannot rot silently.  Fences tagged
  ``python noqa`` are skipped (for intentional fragments).

Exits non-zero with a list of problems.  Used by the CI docs job and the
tier-1 test ``tests/docs/test_docs.py``.

Usage::

    python scripts/check_docs.py [root]
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(root: Path) -> list[Path]:
    files = sorted((root / "docs").rglob("*.md")) if (root / "docs").is_dir() else []
    readme = root / "README.md"
    if readme.is_file():
        files.append(readme)
    return files


def anchors_of(path: Path) -> set[str]:
    anchors = set()
    for line in path.read_text().splitlines():
        match = HEADING_RE.match(line)
        if match:
            anchors.add(slugify(match.group(1)))
    return anchors


def check_links(path: Path, root: Path, problems: list[str]) -> None:
    in_fence = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, anchor = target.partition("#")
            linked = path if not file_part else (path.parent / file_part).resolve()
            if file_part and not linked.exists():
                problems.append(f"{path.relative_to(root)}:{number}: broken link {target!r}")
                continue
            if anchor and linked.suffix == ".md" and linked.exists():
                if slugify(anchor) not in anchors_of(linked):
                    problems.append(
                        f"{path.relative_to(root)}:{number}: missing anchor {target!r}")


def check_python_fences(path: Path, root: Path, problems: list[str]) -> None:
    in_fence = False
    fence_tag = ""
    fence_info = ""
    block: list[str] = []
    start = 0
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.strip()
        if not in_fence and stripped.startswith("```"):
            in_fence = True
            parts = stripped[3:].split(None, 1)
            fence_tag = parts[0].lower() if parts else ""
            fence_info = parts[1] if len(parts) > 1 else ""
            block = []
            start = number
        elif in_fence and stripped == "```":
            in_fence = False
            if fence_tag == "python" and "noqa" not in fence_info:
                try:
                    ast.parse("\n".join(block))
                except SyntaxError as error:
                    problems.append(
                        f"{path.relative_to(root)}:{start}: python example does "
                        f"not parse ({error.msg}, line {error.lineno})")
        elif in_fence:
            block.append(line)


def main(argv: list[str] | None = None) -> int:
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    problems: list[str] = []
    files = markdown_files(root)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1
    for path in files:
        check_links(path, root, problems)
        check_python_fences(path, root, problems)
    if problems:
        print("\n".join(problems))
        print(f"\n{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"docs ok: {len(files)} files, links resolve, python examples parse")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
