"""Developer utility: print dynamic instruction counts and mixes for all workloads."""

from repro.functional import FunctionalSimulator, mix_statistics
from repro.workloads import list_workloads


def main() -> None:
    for suite in ("specint", "mediabench", "micro"):
        workloads = list_workloads(suite)
        print(f"== {suite} ({len(workloads)} workloads)")
        totals = {"moves": 0.0, "addi": 0.0, "loads": 0.0, "stores": 0.0, "branches": 0.0, "n": 0}
        for workload in workloads:
            result = FunctionalSimulator(workload.build(1), max_instructions=500_000).run()
            mix = mix_statistics(result.trace)
            print(
                f"  {workload.name:26s} {result.dynamic_count:7d}  "
                f"mov={mix.move_fraction:5.1%} addi={mix.reg_imm_add_fraction:5.1%} "
                f"ld={mix.load_fraction:5.1%} st={mix.store_fraction:5.1%} "
                f"br={mix.branch_fraction:5.1%}"
            )
            totals["moves"] += mix.move_fraction
            totals["addi"] += mix.reg_imm_add_fraction
            totals["loads"] += mix.load_fraction
            totals["stores"] += mix.store_fraction
            totals["branches"] += mix.branch_fraction
            totals["n"] += 1
        n = totals["n"] or 1
        print(
            f"  {'AVERAGE':26s} {'':7s}  "
            f"mov={totals['moves']/n:5.1%} addi={totals['addi']/n:5.1%} "
            f"ld={totals['loads']/n:5.1%} st={totals['stores']/n:5.1%} "
            f"br={totals['branches']/n:5.1%}"
        )


if __name__ == "__main__":
    main()
