"""Docstring-coverage gate for the hot-path packages (interrogate-style).

Walks the given packages with ``ast`` and counts docstrings on modules,
classes and public functions/methods (names not starting with ``_``, plus
``__init__`` exempted — its contract belongs to the class docstring).
Fails if coverage drops below the threshold, printing every undocumented
definition so the gate is actionable.

No third-party dependency (the container must not need ``pip install``);
CI runs it as part of the docs job, and it can be run locally:

    python scripts/check_docstrings.py                # default packages/threshold
    python scripts/check_docstrings.py --threshold 95 src/repro/uarch
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

DEFAULT_PACKAGES = ["src/repro/uarch", "src/repro/harness", "src/repro/api"]
DEFAULT_THRESHOLD = 90.0


def is_public(name: str) -> bool:
    return not name.startswith("_")


def iter_definitions(tree: ast.Module, module_name: str):
    """Yield (qualified name, node) for the module, classes and public defs."""
    yield module_name, tree
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield f"{module_name}.{node.name}", node
            for child in node.body:
                if (isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and is_public(child.name)):
                    yield f"{module_name}.{node.name}.{child.name}", child
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and is_public(node.name):
            yield f"{module_name}.{node.name}", node


def check_package(package: Path, root: Path):
    """Returns (documented, missing) lists of qualified names."""
    documented = []
    missing = []
    for path in sorted(package.rglob("*.py")):
        module_name = str(path.relative_to(root)).removesuffix(".py").replace("/", ".")
        tree = ast.parse(path.read_text())
        for name, node in iter_definitions(tree, module_name):
            if ast.get_docstring(node):
                documented.append(name)
            else:
                missing.append(name)
    return documented, missing


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("packages", nargs="*", default=DEFAULT_PACKAGES,
                        help="package directories to check")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help=f"minimum coverage percent (default {DEFAULT_THRESHOLD})")
    args = parser.parse_args(argv)

    root = Path(__file__).resolve().parent.parent
    documented: list[str] = []
    missing: list[str] = []
    for package in args.packages:
        package_path = (root / package).resolve()
        if not package_path.is_dir():
            print(f"no such package directory: {package}", file=sys.stderr)
            return 2
        # Qualified names drop the src/ prefix when present; packages
        # elsewhere (tests/, scripts/) are named relative to the repo root.
        base = root / "src" if package_path.is_relative_to(root / "src") else root
        good, bad = check_package(package_path, base)
        documented.extend(good)
        missing.extend(bad)

    total = len(documented) + len(missing)
    coverage = 100.0 * len(documented) / total if total else 100.0
    print(f"docstring coverage: {coverage:.1f}% "
          f"({len(documented)}/{total} definitions documented)")
    if missing:
        print("undocumented:")
        for name in missing:
            print(f"  - {name}")
    if coverage < args.threshold:
        print(f"FAIL: below threshold {args.threshold:.1f}%", file=sys.stderr)
        return 1
    print(f"ok (threshold {args.threshold:.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
