"""Docstring-coverage gate — thin wrapper over ``repro.lint``.

The gate logic lives in :mod:`repro.lint.docstrings` (the ``docstrings``
checker of ``python -m repro lint``); this script keeps the historical
CLI — positional package directories plus ``--threshold`` — for CI
muscle memory and local use:

    python scripts/check_docstrings.py                # default packages/threshold
    python scripts/check_docstrings.py --threshold 95 src/repro/uarch

No third-party dependency (the container must not need ``pip install``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.lint.docstrings import (  # noqa: E402 - after sys.path bootstrap
    DEFAULT_PACKAGES,
    DEFAULT_THRESHOLD,
    docstring_coverage,
)


def main(argv: list[str] | None = None) -> int:
    """Run the coverage gate; 0 = at/above threshold, 1 = below, 2 = usage."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("packages", nargs="*", default=list(DEFAULT_PACKAGES),
                        help="package directories to check")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help=f"minimum coverage percent (default {DEFAULT_THRESHOLD})")
    args = parser.parse_args(argv)

    for package in args.packages:
        if not (ROOT / package).resolve().is_dir():
            print(f"no such package directory: {package}", file=sys.stderr)
            return 2
    documented, missing = docstring_coverage(ROOT, args.packages)

    total = len(documented) + len(missing)
    coverage = 100.0 * len(documented) / total if total else 100.0
    print(f"docstring coverage: {coverage:.1f}% "
          f"({len(documented)}/{total} definitions documented)")
    if missing:
        print("undocumented:")
        for name, rel, line in missing:
            print(f"  - {name} ({rel}:{line})")
    if coverage < args.threshold:
        print(f"FAIL: below threshold {args.threshold:.1f}%", file=sys.stderr)
        return 1
    print(f"ok (threshold {args.threshold:.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
