"""Timing harness for the parallel, cached experiment engine.

Runs the full fig8–fig12 experiment sweep three ways and reports wall-clock:

1. **serial / cold** — ``jobs=1``, no cache: the original seed execution path;
2. **parallel / cold** — ``jobs=N`` workers against an empty cache;
3. **parallel / warm** — ``jobs=N`` with every grid point already cached.

Every report's rows are compared across the three runs — the engine must be a
pure speedup, so any row difference is a hard failure.  The summary table is
printed and written under ``benchmarks/results/`` so the measurement is a
committed artifact.

Usage::

    PYTHONPATH=src python scripts/benchmark_engine.py            # default sweep
    PYTHONPATH=src python scripts/benchmark_engine.py --jobs 8 \\
        --workloads gzip_like vortex_like --output /tmp/t.txt
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.harness import (
    SimulationCache,
    figure8_elimination_and_speedup,
    figure9_critical_path,
    figure10_division_of_labor,
    figure11_issue_width,
    figure11_register_file,
    figure12_scheduler,
)

#: The figure sweep being timed (the paper's full evaluation section).
FIGURES = [
    ("fig8", figure8_elimination_and_speedup),
    ("fig9", figure9_critical_path),
    ("fig10", figure10_division_of_labor),
    ("fig11_regs", figure11_register_file),
    ("fig11_width", figure11_issue_width),
    ("fig12", figure12_scheduler),
]

#: Default workload subset: the same representative SPECint kernels the
#: benchmark suite uses (see benchmarks/conftest.py).
DEFAULT_WORKLOADS = ["gzip_like", "vortex_like", "crafty_like", "parser_like",
                     "twolf_like"]

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "benchmarks" / "results" / "engine_timing.txt"


def run_sweep(workloads, scale, jobs, cache):
    """Run every figure experiment once; returns (reports, seconds)."""
    reports = {}
    start = time.perf_counter()
    for name, figure in FIGURES:
        reports[name] = figure("specint", workloads=workloads, scale=scale,
                               jobs=jobs, cache=cache)
    return reports, time.perf_counter() - start


def check_rows_identical(reference, candidate, label) -> None:
    """Fail loudly if any report row differs from the serial reference."""
    for name in reference:
        if reference[name].rows != candidate[name].rows:
            raise SystemExit(
                f"FAIL: {name} rows differ between serial/cold and {label};"
                f"\nserial: {reference[name].rows}\n{label}: {candidate[name].rows}"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel runs (default 4)")
    parser.add_argument("--workloads", nargs="+", default=DEFAULT_WORKLOADS,
                        help="workload names to sweep")
    parser.add_argument("--scale", type=int, default=1, help="workload scale factor")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the timing table")
    args = parser.parse_args(argv)

    cache_dir = Path(tempfile.mkdtemp(prefix="repro-engine-timing-"))
    try:
        cache = SimulationCache(cache_dir)

        serial_reports, serial_s = run_sweep(args.workloads, args.scale, 1, False)
        cold_reports, cold_s = run_sweep(args.workloads, args.scale, args.jobs, cache)
        warm_reports, warm_s = run_sweep(args.workloads, args.scale, args.jobs, cache)

        check_rows_identical(serial_reports, cold_reports, "parallel/cold")
        check_rows_identical(serial_reports, warm_reports, "parallel/warm")
        entries = len(cache)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    lines = [
        "Experiment-engine timing: full fig8-fig12 sweep",
        f"workloads: {', '.join(args.workloads)} (scale={args.scale})",
        f"grid points cached: {entries}",
        "",
        f"{'configuration':<28}{'wall-clock':>12}{'speedup':>10}",
        "-" * 50,
        f"{'serial, no cache (seed)':<28}{serial_s:>10.2f}s{1.0:>9.2f}x",
        f"{f'jobs={args.jobs}, cold cache':<28}{cold_s:>10.2f}s{serial_s / cold_s:>9.2f}x",
        f"{f'jobs={args.jobs}, warm cache':<28}{warm_s:>10.2f}s{serial_s / warm_s:>9.2f}x",
        "",
        "rows identical across all three runs: yes",
    ]
    text = "\n".join(lines)
    print(text)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(text + "\n")
    print(f"\nwritten to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
