"""Timing harness for the experiment engine and the event-driven cycle loop.

Measures three things and writes committed artifacts each run:

1. **Engine sweep** — the full fig8–fig12 experiment sweep four ways
   (``jobs=1``/no cache, ``jobs=N``/cold cache, ``jobs=N``/warm cache,
   ``jobs="auto"``/no cache), with every structured report (rows, raw data
   and generating spec, via ``ExperimentReport.to_dict``) compared across
   the runs (the engine must be a pure speedup, so any difference is a hard
   failure).
2. **Cycle loop** — the fig8 serial sweep again with a wall-clock probe
   around ``Pipeline.run``, isolating the cycle loop from program
   build, functional simulation and report formatting.  Both numbers are
   compared against the recorded PR 3 measurements (same container, same
   workloads; override with ``--fig8-reference``/``--cycle-reference``).
3. **Scale sweep** — ``run_scale_sweep`` over ``scale ∈ {1, 2, 4}`` cold and
   then warm against the same cache, rows verified identical, with the
   report table written to ``benchmarks/results/scale_sweep_specint.txt``.

Artifacts: the human-readable summary goes to
``benchmarks/results/engine_timing.txt``; the same measurements are also
written machine-readably as ``BENCH_engine.json`` (engine sweep + scale
sweep) and ``BENCH_cycle_loop.json`` (cycle-loop probe, including the
normalised committed-instructions-per-second figure the CI perf-smoke gate
``scripts/perf_smoke.py`` compares against).

Usage::

    PYTHONPATH=src python scripts/benchmark_engine.py            # full run
    PYTHONPATH=src python scripts/benchmark_engine.py --jobs 8 \\
        --workloads gzip_like vortex_like --output /tmp/t.txt
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

import repro.uarch.core as uarch_core
from repro.harness import SimulationCache, run_experiment, run_scale_sweep

#: The registered figure experiments being timed (the paper's evaluation).
FIGURES = ["fig8", "fig9", "fig10", "fig11_regs", "fig11_width", "fig12"]

#: Default workload subset: the same representative SPECint kernels the
#: benchmark suite uses (see benchmarks/conftest.py).
DEFAULT_WORKLOADS = ["gzip_like", "vortex_like", "crafty_like", "parser_like",
                     "twolf_like"]

#: Scale factors for the scale-sweep timing section.
SCALES = (1, 2, 4)

#: PR 1 seed (commit d9de97a) measurements on the same container and default
#: workloads: median of five best-of-3 runs of (a) the fig8 serial sweep and
#: (b) the summed ``Pipeline.run`` wall-clock inside that sweep.
FIG8_SERIAL_SEED_S = 1.78
FIG8_CYCLE_LOOP_SEED_S = 1.66

#: PR 3 baseline (commit 5a1de2b) on the same container and workloads — the
#: pre-structure-of-arrays engine.  These anchor the speedup columns;
#: re-measure and override when running elsewhere (``--fig8-reference`` /
#: ``--cycle-reference``).
FIG8_SERIAL_PR3_S = 1.16
FIG8_CYCLE_LOOP_PR3_S = 1.06

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "benchmarks" / "results" / "engine_timing.txt"
SCALE_SWEEP_OUTPUT = DEFAULT_OUTPUT.parent / "scale_sweep_specint.txt"
BENCH_ENGINE_JSON = DEFAULT_OUTPUT.parent / "BENCH_engine.json"
BENCH_CYCLE_LOOP_JSON = DEFAULT_OUTPUT.parent / "BENCH_cycle_loop.json"
BENCH_BACKENDS_JSON = DEFAULT_OUTPUT.parent / "BENCH_backends.json"


class CycleLoopProbe:
    """Accumulates wall-clock spent inside ``Pipeline.run`` (the cycle
    loop) plus the committed-instruction total, measured the same way the
    seed reference numbers were."""

    def __init__(self):
        self.seconds = 0.0
        self.instructions = 0
        self._original = None

    def __enter__(self):
        probe = self
        original = uarch_core.Pipeline.run
        self._original = original

        def timed(pipeline_self, max_cycles=None):
            start = time.perf_counter()
            try:
                result = original(pipeline_self, max_cycles)
            finally:
                probe.seconds += time.perf_counter() - start
            probe.instructions += result.stats.committed
            return result

        uarch_core.Pipeline.run = timed
        return self

    def __exit__(self, *exc):
        uarch_core.Pipeline.run = self._original
        return False


#: Bump when :func:`calibrate` changes its workload — calibration ratios
#: are only comparable within one version.
CALIBRATION_VERSION = 1

#: Iterations of the calibration micro-loop (fixed, deterministic work;
#: ~0.1 s on the reference container, long enough to be noise-stable).
CALIBRATION_ITERATIONS = 600_000


def calibrate(repeats: int = 3) -> float:
    """Best-of-N seconds for a fixed pure-Python micro-loop.

    The loop's operation mix mirrors the simulator's cycle loop — list
    subscripts, small-int arithmetic, dict probes, data-dependent branches
    — so its wall-clock tracks how fast *this* runner executes exactly the
    kind of bytecode the cycle loop is made of.  The perf-smoke gate
    normalises the committed-baseline instructions/s by the ratio of the
    baseline's calibration to the local one, which turns "is this machine
    slower?" into a measured quantity instead of slack in the threshold.
    """
    best = float("inf")
    for _ in range(repeats):
        values = list(range(256))
        ready = [0] * 256
        buckets: dict[int, int] = {}
        acc = 0
        start = time.perf_counter()
        for index in range(CALIBRATION_ITERATIONS):
            slot = index & 255
            value = values[slot] + acc
            if value & 4:
                acc = (acc + value) & 0xFFFFFFFF
            else:
                acc = (acc ^ value) & 0xFFFFFFFF
            ready[slot] = acc
            bucket = buckets.get(slot)
            if bucket is None:
                buckets[slot] = acc
            elif slot & 15 == 0:
                del buckets[slot]
        best = min(best, time.perf_counter() - start)
    return best


def run_sweep(workloads, scale, jobs, cache, backend=None):
    """Run every figure experiment once; returns (reports, seconds)."""
    reports = {}
    start = time.perf_counter()
    for name in FIGURES:
        reports[name] = run_experiment(name, suite="specint", workloads=workloads,
                                       scale=scale, jobs=jobs, cache=cache,
                                       backend=backend)
    return reports, time.perf_counter() - start


def check_reports_identical(reference, candidate, label) -> None:
    """Fail loudly if any structured report differs from the serial reference.

    Reports are compared in their ``to_dict`` form — rows, raw data values
    and generating spec all at once — so the engine cannot drift in ways a
    formatted-table comparison would miss.
    """
    for name in reference:
        if reference[name].to_dict() != candidate[name].to_dict():
            raise SystemExit(
                f"FAIL: {name} report differs between serial/cold and {label};"
                f"\nserial: {reference[name].to_dict()}"
                f"\n{label}: {candidate[name].to_dict()}"
            )


def time_fig8(workloads, jobs, repeats: int = 3, backend=None):
    """Best-of-N fig8 sweep wall-clock plus in-sim cycle-loop time.

    Returns ``(sweep_s, loop_s, committed_instructions)`` — the instruction
    total is per single sweep (identical across repeats), so
    ``instructions / loop_s`` is the committed-instructions-per-second
    figure the perf-smoke gate normalises against.  ``backend`` selects the
    cycle-loop backend (see :mod:`repro.uarch.backend`); for the compiled
    backend the probe still wraps ``Pipeline.run``, so marshalling costs
    are inside the measurement — the number is honest end-to-end loop
    throughput, not kernel-only time.
    """
    best_sweep = float("inf")
    best_loop = float("inf")
    instructions = 0
    for _ in range(repeats):
        probe = CycleLoopProbe()
        start = time.perf_counter()
        with probe:
            run_experiment("fig8", suite="specint", workloads=workloads,
                           scale=1, jobs=jobs, cache=False, backend=backend)
        sweep = time.perf_counter() - start
        best_sweep = min(best_sweep, sweep)
        best_loop = min(best_loop, probe.seconds)
        instructions = probe.instructions
    return best_sweep, best_loop, instructions


def time_backends(workloads, repeats: int = 3):
    """Fig8 cycle-loop probe once per registered backend.

    Unavailable backends (no C toolchain, ``REPRO_NO_CC=1``) get an
    ``{"available": False}`` row instead of a measurement, so the artifact
    records *why* a backend has no number.  Every available backend's fig8
    report is compared against the ``python`` reference in ``to_dict``
    form — backends must be a pure speedup, so any difference is a hard
    failure, exactly like the engine-sweep comparison.

    Returns ``{backend_name: row_dict}`` with ``instructions_per_second``
    and ``speedup_vs_python`` filled in for available backends.
    """
    from repro.uarch.backend import backend_names, get_backend

    rows = {}
    reports = {}
    for name in backend_names():
        if not get_backend(name).available():
            rows[name] = {"available": False}
            continue
        reports[name] = run_experiment("fig8", suite="specint",
                                       workloads=workloads, scale=1, jobs=1,
                                       cache=False, backend=name)
        _, loop_s, instructions = time_fig8(workloads, jobs=1,
                                            repeats=repeats, backend=name)
        rows[name] = {
            "available": True,
            "cycle_loop_s": round(loop_s, 4),
            "committed_instructions": instructions,
            "instructions_per_second": round(instructions / loop_s, 1),
        }
    reference = reports["python"]
    for name, report in reports.items():
        if report.to_dict() != reference.to_dict():
            raise SystemExit(
                f"FAIL: fig8 report differs between the python and {name} "
                f"backends;\npython: {reference.to_dict()}"
                f"\n{name}: {report.to_dict()}"
            )
    python_ips = rows["python"]["instructions_per_second"]
    for name, row in rows.items():
        if row.get("available") and name != "python":
            row["speedup_vs_python"] = round(
                row["instructions_per_second"] / python_ips, 2)
    return rows


def time_scale_sweep(workloads, jobs, cache_dir, backend=None):
    """Cold/warm scale-sweep timings; returns (report, cold_s, warm_s)."""
    cache = SimulationCache(cache_dir)
    start = time.perf_counter()
    cold_report = run_scale_sweep("specint", workloads=workloads,
                                  scales=SCALES, jobs=jobs, cache=cache,
                                  backend=backend)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm_report = run_scale_sweep("specint", workloads=workloads,
                                  scales=SCALES, jobs=jobs, cache=cache,
                                  backend=backend)
    warm_s = time.perf_counter() - start
    if cold_report.to_dict() != warm_report.to_dict():
        raise SystemExit(
            f"FAIL: scale-sweep report differs between cold and warm cache;"
            f"\ncold: {cold_report.to_dict()}\nwarm: {warm_report.to_dict()}"
        )
    return cold_report, cold_s, warm_s


def backend_comparison(args) -> int:
    """The ``--backend all`` mode: per-backend fig8 probe + artifact.

    Probes the fig8 cycle loop once per registered backend (skipping
    unavailable ones), prints the comparison table, and writes
    ``BENCH_backends.json`` next to ``--output`` — the per-backend
    committed baselines ``scripts/perf_smoke.py`` gates each *available*
    backend against.
    """
    rows = time_backends(args.workloads, repeats=args.repeats)
    calibration_s = calibrate(args.repeats)

    lines = [
        "Cycle-loop backends: fig8 in-sim probe per registered backend",
        f"workloads: {', '.join(args.workloads)} (best of {args.repeats})",
        "",
        f"{'backend':<12}{'cycle loop':>12}{'instr/s':>14}{'vs python':>11}",
        "-" * 49,
    ]
    for name, row in sorted(rows.items()):
        if not row.get("available"):
            lines.append(f"{name:<12}{'unavailable':>12}{'—':>14}{'—':>11}")
            continue
        speedup = row.get("speedup_vs_python", 1.0)
        lines.append(f"{name:<12}{row['cycle_loop_s']:>11.3f}s"
                     f"{row['instructions_per_second']:>14,.0f}"
                     f"{speedup:>10.2f}x")
    lines.append("")
    lines.append("fig8 reports identical across all available backends: yes")
    print("\n".join(lines))

    payload = {
        "schema": "repro-bench-backends/1",
        "workloads": list(args.workloads),
        "repeats": args.repeats,
        "python": platform.python_version(),
        "calibration": {
            "version": CALIBRATION_VERSION,
            "iterations": CALIBRATION_ITERATIONS,
            "seconds": round(calibration_s, 5),
        },
        "backends": rows,
        "reports_identical": True,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    bench_backends_json = args.output.parent / BENCH_BACKENDS_JSON.name
    bench_backends_json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nmachine-readable: {bench_backends_json}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel runs (default 4)")
    parser.add_argument("--workloads", nargs="+", default=DEFAULT_WORKLOADS,
                        help="workload names to sweep")
    parser.add_argument("--scale", type=int, default=1, help="workload scale factor")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the timing table")
    parser.add_argument("--scale-sweep-output", type=Path, default=SCALE_SWEEP_OUTPUT,
                        help="where to write the scale-sweep report")
    parser.add_argument("--fig8-reference", type=float, default=FIG8_SERIAL_PR3_S,
                        help="PR 3 fig8 serial sweep seconds (speedup baseline)")
    parser.add_argument("--cycle-reference", type=float, default=FIG8_CYCLE_LOOP_PR3_S,
                        help="PR 3 fig8 cycle-loop seconds (speedup baseline)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of-N repetitions for the fig8 probes")
    parser.add_argument("--backend", default=None, metavar="NAME|all",
                        help="cycle-loop backend for every measurement "
                             "(python|compiled), or 'all' to run only the "
                             "per-backend fig8 probe and write "
                             "BENCH_backends.json")
    args = parser.parse_args(argv)

    if args.backend == "all":
        return backend_comparison(args)

    cache_dir = Path(tempfile.mkdtemp(prefix="repro-engine-timing-"))
    scale_cache_dir = Path(tempfile.mkdtemp(prefix="repro-scale-timing-"))
    try:
        cache = SimulationCache(cache_dir)

        serial_reports, serial_s = run_sweep(args.workloads, args.scale, 1, False,
                                             backend=args.backend)
        cold_reports, cold_s = run_sweep(args.workloads, args.scale, args.jobs,
                                         cache, backend=args.backend)
        warm_reports, warm_s = run_sweep(args.workloads, args.scale, args.jobs,
                                         cache, backend=args.backend)
        auto_reports, auto_s = run_sweep(args.workloads, args.scale, "auto", False,
                                         backend=args.backend)

        check_reports_identical(serial_reports, cold_reports, "parallel/cold")
        check_reports_identical(serial_reports, warm_reports, "parallel/warm")
        check_reports_identical(serial_reports, auto_reports, "jobs=auto")
        entries = len(cache)

        fig8_s, cycle_loop_s, loop_instructions = time_fig8(
            args.workloads, jobs=1, repeats=args.repeats, backend=args.backend)
        fig8_auto_s, _, _ = time_fig8(args.workloads, jobs="auto",
                                      repeats=args.repeats, backend=args.backend)
        scale_report, scale_cold_s, scale_warm_s = time_scale_sweep(
            args.workloads, args.jobs, scale_cache_dir, backend=args.backend)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
        shutil.rmtree(scale_cache_dir, ignore_errors=True)

    fig8_speedup = args.fig8_reference / fig8_s
    cycle_speedup = args.cycle_reference / cycle_loop_s
    lines = [
        "Experiment-engine timing: fig8-fig12 sweep, cycle loop, scale sweep",
        f"workloads: {', '.join(args.workloads)} (scale={args.scale})",
        f"grid points cached: {entries}",
        "",
        f"{'configuration':<34}{'wall-clock':>12}{'speedup':>10}",
        "-" * 56,
        f"{'serial, no cache':<34}{serial_s:>10.2f}s{1.0:>9.2f}x",
        f"{f'jobs={args.jobs}, cold cache':<34}{cold_s:>10.2f}s{serial_s / cold_s:>9.2f}x",
        f"{f'jobs={args.jobs}, warm cache':<34}{warm_s:>10.2f}s{serial_s / warm_s:>9.2f}x",
        f"{'jobs=auto, no cache':<34}{auto_s:>10.2f}s{serial_s / auto_s:>9.2f}x",
        "",
        f"SoA core vs PR 3 engine (same container, best of {args.repeats}):",
        f"{'fig8 serial sweep':<34}{fig8_s:>10.2f}s"
        f"   {fig8_speedup:.2f}x vs PR 3 {args.fig8_reference:.2f}s",
        f"{'fig8 sweep, jobs=auto':<34}{fig8_auto_s:>10.2f}s"
        f"   {fig8_s / fig8_auto_s:.2f}x vs serial {fig8_s:.2f}s",
        f"{'fig8 cycle loop (in-sim)':<34}{cycle_loop_s:>10.2f}s"
        f"   {cycle_speedup:.2f}x vs PR 3 {args.cycle_reference:.2f}s",
        "",
        f"scale sweep (scales {list(SCALES)}, jobs={args.jobs}):",
        f"{'scale_sweep cold cache':<34}{scale_cold_s:>10.2f}s{1.0:>9.2f}x",
        f"{'scale_sweep warm cache':<34}{scale_warm_s:>10.2f}s"
        f"{scale_cold_s / scale_warm_s:>9.2f}x",
        "",
        "structured reports identical across all runs "
        "(serial/parallel/warm/auto, cold/warm scale sweep): yes",
    ]
    text = "\n".join(lines)
    print(text)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(text + "\n")

    # Machine-readable artifacts: the engine sweep and the cycle-loop probe
    # (the latter is the committed baseline scripts/perf_smoke.py gates on).
    # They follow --output's directory, so re-timing into /tmp never
    # silently rewrites the committed CI baselines.
    bench_engine_json = args.output.parent / BENCH_ENGINE_JSON.name
    bench_cycle_json = args.output.parent / BENCH_CYCLE_LOOP_JSON.name
    engine_payload = {
        "schema": "repro-bench-engine/1",
        "workloads": list(args.workloads),
        "scale": args.scale,
        "jobs": args.jobs,
        "grid_points_cached": entries,
        "python": platform.python_version(),
        "engine": {
            "serial_no_cache_s": round(serial_s, 4),
            "parallel_cold_s": round(cold_s, 4),
            "parallel_warm_s": round(warm_s, 4),
            "auto_no_cache_s": round(auto_s, 4),
        },
        "scale_sweep": {
            "scales": list(SCALES),
            "cold_s": round(scale_cold_s, 4),
            "warm_s": round(scale_warm_s, 4),
        },
        "reports_identical": True,
    }
    bench_engine_json.write_text(json.dumps(engine_payload, indent=2) + "\n")

    calibration_s = calibrate(args.repeats)
    cycle_payload = {
        "schema": "repro-bench-cycle-loop/1",
        "workloads": list(args.workloads),
        "repeats": args.repeats,
        "python": platform.python_version(),
        "calibration": {
            "version": CALIBRATION_VERSION,
            "iterations": CALIBRATION_ITERATIONS,
            "seconds": round(calibration_s, 5),
        },
        "fig8_sweep_s": round(fig8_s, 4),
        "fig8_sweep_auto_s": round(fig8_auto_s, 4),
        "cycle_loop_s": round(cycle_loop_s, 4),
        "committed_instructions": loop_instructions,
        "instructions_per_second": round(loop_instructions / cycle_loop_s, 1),
        "reference": {
            "label": "PR 3 engine (pre-SoA), same container",
            "fig8_sweep_s": args.fig8_reference,
            "cycle_loop_s": args.cycle_reference,
        },
        "speedup_vs_reference": {
            "fig8_sweep": round(fig8_speedup, 3),
            "cycle_loop": round(cycle_speedup, 3),
        },
    }
    bench_cycle_json.write_text(json.dumps(cycle_payload, indent=2) + "\n")

    scale_lines = [
        "Scale sweep (specint): baseline vs RENO at workload scales "
        f"{list(SCALES)}",
        f"workloads: {', '.join(args.workloads)}; jobs={args.jobs}; "
        "generated by scripts/benchmark_engine.py",
        "",
        str(scale_report),
    ]
    args.scale_sweep_output.parent.mkdir(parents=True, exist_ok=True)
    args.scale_sweep_output.write_text("\n".join(scale_lines) + "\n")

    print(f"\nwritten to {args.output}")
    print(f"machine-readable: {bench_engine_json}, {bench_cycle_json}")
    print(f"scale sweep written to {args.scale_sweep_output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
