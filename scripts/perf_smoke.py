"""CI perf-smoke gate: fail on a large cycle-loop slowdown.

Re-measures the fig8 in-sim cycle-loop probe (the same measurement
``scripts/benchmark_engine.py`` records into
``benchmarks/results/BENCH_cycle_loop.json``) and fails when the measured
**committed-instructions-per-second** figure drops below the committed
baseline's, after normalising for runner speed.

Normalisation: alongside the cycle-loop probe the baseline records a
**calibration micro-loop** (:func:`benchmark_engine.calibrate` — a fixed
pure-Python loop with the cycle loop's operation mix).  The gate re-runs
the same micro-loop on the current runner and scales the baseline's
instructions/s by ``baseline_calibration_s / local_calibration_s``: a
machine that runs the calibration 2× slower is *expected* to run the cycle
loop 2× slower, and only a slowdown beyond that ratio counts as a
regression.  This lets the threshold be tight (default 1.25×) without
false-failing on slower runners.  Baselines without a matching calibration
record (older commits, or a calibration-version bump) fall back to the
unnormalised comparison with the historical 1.5× threshold.

The probe runs with occupancy recording **off** (``record_stats`` defaults
to ``False`` everywhere), so this gate doubles as the observability
off-mode overhead budget: the cycle loop tests one pre-bound local boolean
per cycle and nothing else (see ``docs/observability.md``).  The gate
first asserts the default path really records nothing, then holds the
measured cost to the calibrated factor — if recording ever leaks into the
default path, the assertion or the floor fails.

Environment overrides:

* ``REPRO_PERF_SMOKE_FACTOR`` — slowdown factor that fails the gate
  (default 1.25 calibrated, 1.5 uncalibrated).
* ``REPRO_PERF_SMOKE_SKIP=1`` — skip entirely (emergency hatch for
  known-slow environments).

Usage::

    PYTHONPATH=src python scripts/perf_smoke.py            # full baseline gate
    PYTHONPATH=src python scripts/perf_smoke.py --repeats 2
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "benchmarks" / "results" / "BENCH_cycle_loop.json"

#: Default gate when the baseline carries a matching calibration record.
CALIBRATED_FACTOR = 1.25

#: Fallback gate for uncalibrated baselines (the historical threshold).
UNCALIBRATED_FACTOR = 1.5

sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "scripts"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=BASELINE,
                        help="committed BENCH_cycle_loop.json to gate against")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N probe repetitions (default 3)")
    parser.add_argument("--factor", type=float, default=None,
                        help="slowdown factor that fails the gate (default "
                             "$REPRO_PERF_SMOKE_FACTOR, else 1.25 when the "
                             "baseline is calibrated, 1.5 otherwise)")
    args = parser.parse_args(argv)

    if os.environ.get("REPRO_PERF_SMOKE_SKIP") == "1":
        print("perf smoke: skipped (REPRO_PERF_SMOKE_SKIP=1)")
        return 0

    baseline = json.loads(args.baseline.read_text())
    baseline_ips = baseline["instructions_per_second"]
    workloads = baseline["workloads"]

    from benchmark_engine import (  # noqa: E402  (sibling script)
        CALIBRATION_VERSION,
        calibrate,
        time_fig8,
    )

    # Calibration: re-run the micro-loop here and scale the baseline's
    # expectation by the measured runner-speed ratio.
    recorded = baseline.get("calibration") or {}
    calibrated = recorded.get("version") == CALIBRATION_VERSION \
        and recorded.get("seconds", 0) > 0
    expected_ips = baseline_ips
    local_calibration_s = None
    if calibrated:
        local_calibration_s = calibrate(args.repeats)
        speed_ratio = recorded["seconds"] / local_calibration_s
        expected_ips = baseline_ips * speed_ratio
        print(f"perf smoke: calibration {local_calibration_s:.4f}s local vs "
              f"{recorded['seconds']:.4f}s baseline "
              f"(runner speed x{speed_ratio:.2f})")
    else:
        print("perf smoke: baseline has no matching calibration record; "
              "using the unnormalised comparison")

    factor = args.factor
    if factor is None:
        try:
            factor = float(os.environ.get("REPRO_PERF_SMOKE_FACTOR", "") or
                           (CALIBRATED_FACTOR if calibrated
                            else UNCALIBRATED_FACTOR))
        except ValueError:
            factor = UNCALIBRATED_FACTOR

    # The stats-off guarantee this gate certifies: the default simulation
    # path must record no occupancy/timeline state at all, so the timing
    # below measures the one-boolean-per-cycle off mode and nothing more.
    from repro.core.simulator import simulate_workload  # noqa: E402

    off_probe = simulate_workload("micro_addi_chain").stats
    if off_probe.occupancy is not None:
        print("perf smoke: FAIL — default (stats-off) run recorded occupancy; "
              "the off-mode fast path has been compromised", file=sys.stderr)
        return 1
    print("perf smoke: stats-off probe recorded nothing (off-mode path intact)")

    _, loop_s, instructions = time_fig8(workloads, jobs=1, repeats=args.repeats)
    measured_ips = instructions / loop_s
    floor = expected_ips / factor

    print(f"perf smoke: cycle loop {loop_s:.3f}s for {instructions} instructions")
    print(f"perf smoke: measured {measured_ips:,.0f} instr/s, "
          f"expected {expected_ips:,.0f} instr/s "
          f"(committed baseline {baseline_ips:,.0f}), floor {floor:,.0f} "
          f"(factor {factor:.2f}x)")
    if measured_ips < floor:
        print(f"perf smoke: FAIL — cycle loop is more than {factor:.2f}x "
              f"slower than the calibrated baseline expectation",
              file=sys.stderr)
        return 1

    failures = gate_backends(args, factor, local_calibration_s)
    if failures:
        return 1
    print("perf smoke: ok")
    return 0


def gate_backends(args, factor: float, local_calibration_s: float | None) -> int:
    """Gate each *available* backend against ``BENCH_backends.json``.

    The per-backend baselines come from ``benchmark_engine.py --backend
    all``; a backend that is unavailable on this runner (no C toolchain,
    ``REPRO_NO_CC=1``) is **skipped, not failed** — the toolchain-absent CI
    leg must pass on the python gate alone.  The ``python`` row is skipped
    too: the primary gate above already measured it.  Returns the number
    of failing backends.
    """
    from benchmark_engine import CALIBRATION_VERSION, calibrate, time_fig8
    from repro.uarch.backend import backend_names, get_backend

    backends_path = args.baseline.parent / "BENCH_backends.json"
    if not backends_path.exists():
        print("perf smoke: no BENCH_backends.json baseline; "
              "per-backend gates skipped")
        return 0
    payload = json.loads(backends_path.read_text())
    recorded = payload.get("calibration") or {}
    speed_ratio = 1.0
    if (recorded.get("version") == CALIBRATION_VERSION
            and recorded.get("seconds", 0) > 0):
        if local_calibration_s is None:
            local_calibration_s = calibrate(args.repeats)
        speed_ratio = recorded["seconds"] / local_calibration_s

    registered = set(backend_names())
    failures = 0
    for name, row in sorted(payload.get("backends", {}).items()):
        if name == "python":
            continue
        if not row.get("available"):
            print(f"perf smoke: backend {name}: no committed baseline "
                  f"measurement; skipped")
            continue
        if name not in registered or not get_backend(name).available():
            print(f"perf smoke: backend {name}: unavailable on this runner; "
                  f"skipped")
            continue
        _, loop_s, instructions = time_fig8(
            payload["workloads"], jobs=1, repeats=args.repeats, backend=name)
        measured = instructions / loop_s
        expected = row["instructions_per_second"] * speed_ratio
        floor = expected / factor
        print(f"perf smoke: backend {name}: measured {measured:,.0f} instr/s, "
              f"expected {expected:,.0f}, floor {floor:,.0f} "
              f"(factor {factor:.2f}x)")
        if measured < floor:
            print(f"perf smoke: FAIL — {name} backend is more than "
                  f"{factor:.2f}x slower than its calibrated baseline",
                  file=sys.stderr)
            failures += 1
    return failures


if __name__ == "__main__":
    sys.exit(main())
