"""CI perf-smoke gate: fail on a large cycle-loop slowdown.

Re-measures the fig8 in-sim cycle-loop probe (the same measurement
``scripts/benchmark_engine.py`` records into
``benchmarks/results/BENCH_cycle_loop.json``) and fails when the measured
**committed-instructions-per-second** figure drops below ``baseline /
threshold``.  Normalising by simulated instructions makes the gate
meaningful on machines other than the one that produced the committed
baseline; the generous default threshold (1.5×) absorbs ordinary
machine-speed differences while still catching order-of-magnitude
regressions (an accidental de-inlining, a per-instruction object creep).

Environment overrides:

* ``REPRO_PERF_SMOKE_FACTOR`` — slowdown factor that fails the gate
  (default 1.5).
* ``REPRO_PERF_SMOKE_SKIP=1`` — skip entirely (emergency hatch for
  known-slow environments).

Usage::

    PYTHONPATH=src python scripts/perf_smoke.py            # full baseline gate
    PYTHONPATH=src python scripts/perf_smoke.py --repeats 2
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "benchmarks" / "results" / "BENCH_cycle_loop.json"

sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "scripts"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=BASELINE,
                        help="committed BENCH_cycle_loop.json to gate against")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N probe repetitions (default 3)")
    parser.add_argument("--factor", type=float, default=None,
                        help="slowdown factor that fails the gate "
                             "(default $REPRO_PERF_SMOKE_FACTOR or 1.5)")
    args = parser.parse_args(argv)

    if os.environ.get("REPRO_PERF_SMOKE_SKIP") == "1":
        print("perf smoke: skipped (REPRO_PERF_SMOKE_SKIP=1)")
        return 0

    factor = args.factor
    if factor is None:
        try:
            factor = float(os.environ.get("REPRO_PERF_SMOKE_FACTOR", "1.5"))
        except ValueError:
            factor = 1.5

    baseline = json.loads(args.baseline.read_text())
    baseline_ips = baseline["instructions_per_second"]
    workloads = baseline["workloads"]

    from benchmark_engine import time_fig8  # noqa: E402  (sibling script)

    _, loop_s, instructions = time_fig8(workloads, jobs=1, repeats=args.repeats)
    measured_ips = instructions / loop_s
    floor = baseline_ips / factor

    print(f"perf smoke: cycle loop {loop_s:.3f}s for {instructions} instructions")
    print(f"perf smoke: measured {measured_ips:,.0f} instr/s, "
          f"baseline {baseline_ips:,.0f} instr/s, floor {floor:,.0f} "
          f"(factor {factor:.2f}x)")
    if measured_ips < floor:
        print(f"perf smoke: FAIL — cycle loop is more than {factor:.2f}x "
              f"slower than the committed baseline", file=sys.stderr)
        return 1
    print("perf smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
