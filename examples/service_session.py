"""The `repro.api` facade end to end: jobs, coalescing, checkpointed slices.

Demonstrates the three pieces of the public API:

1. a ``Session`` running experiment jobs with per-cell progress and
   content-addressed coalescing of identical submissions,
2. the same session driven over HTTP through an in-process
   ``repro serve`` server (what ``python -m repro serve`` runs), and
3. incremental simulation: a pipeline advanced in bounded cycle slices
   with a disk checkpoint, finishing byte-identical to a one-shot run.

Run with:  python examples/service_session.py
"""

import json
import tempfile
import threading
import urllib.request

from repro.api import ExperimentRequest, Session, make_server, run_sliced
from repro.functional.simulator import FunctionalSimulator
from repro.uarch.config import MachineConfig
from repro.uarch.core import Pipeline
from repro.workloads.base import get_workload

WORKLOADS = ["gzip_like", "vortex_like"]


def progress(job, grid_key, cached):
    state = "cache" if cached else "ran"
    print(f"  [{job.status().cells_done}/{job.cells_total}] {grid_key} ({state})")


def main():
    cache_dir = tempfile.mkdtemp(prefix="repro-example-")

    print("== 1. Session jobs with progress and coalescing ==")
    with Session(jobs="auto", cache=cache_dir) as session:
        request = ExperimentRequest("fig8", suite="specint", workloads=WORKLOADS)
        job = session.submit(request, on_progress=progress)
        twin = session.submit(request)          # identical & in flight
        print("coalesced onto one job:", twin is job)
        print(job.result())

        print("\n== 2. The same session over HTTP ==")
        server = make_server(port=0, session=session)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        body = json.dumps(request.to_dict()).encode()
        submitted = json.loads(urllib.request.urlopen(urllib.request.Request(
            f"http://{host}:{port}/experiments", data=body,
            headers={"Content-Type": "application/json"})).read())
        status = json.loads(urllib.request.urlopen(
            f"http://{host}:{port}/jobs/{submitted['job_id']}?wait=60").read())
        print(f"job {status['job_id']}: {status['state']}, "
              f"{status['cells_cached']}/{status['cells_total']} cells from cache")
        server.shutdown()
        server.server_close()

    print("\n== 3. Checkpointed incremental simulation ==")
    program = get_workload("mcf_like").build(1)
    trace = FunctionalSimulator(program).run().trace
    one_shot = Pipeline(program, trace, MachineConfig.default_4wide()).run()
    sliced = run_sliced(
        Pipeline(program, trace, MachineConfig.default_4wide()),
        slice_cycles=500,
        checkpoint_path=f"{cache_dir}/mcf.ckpt",
        on_slice=lambda p, r: print(
            f"  slice -> cycle {r.stats.cycles}, "
            f"{r.stats.committed}/{len(trace)} retired"),
    )
    print("sliced == one-shot:", sliced.stats == one_shot.stats)


if __name__ == "__main__":
    main()
