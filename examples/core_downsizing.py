"""Core downsizing: use RENO to absorb a smaller execution core (Figure 11/12).

The paper's headline alternative use of RENO: instead of taking the speedup,
keep baseline performance with 30% fewer physical registers, one fewer ALU,
or a pipelined (2-cycle) scheduler.  This example quantifies all three on a
few ALU-heavy kernels.

Run with:  python examples/core_downsizing.py
"""

from repro.harness import (
    figure11_issue_width,
    figure11_register_file,
    figure12_scheduler,
)

WORKLOADS = ["gsm_encode_like", "gzip_like", "mesa_osdemo_like", "vortex_like"]


def main():
    print(figure11_register_file("specint", workloads=WORKLOADS))
    print()
    print(figure11_issue_width("mediabench", workloads=WORKLOADS))
    print()
    print(figure12_scheduler("specint", workloads=WORKLOADS))
    print()
    print("Reading the tables: 100% is the full-size baseline machine without RENO.")
    print("Rows show how much of that performance each configuration retains as the")
    print("register file shrinks, the issue width narrows, or the scheduling loop")
    print("grows to two cycles — with RENO recovering most of the loss.")


if __name__ == "__main__":
    main()
