"""Core downsizing: use RENO to absorb a smaller execution core (Figure 11/12).

The paper's headline alternative use of RENO: instead of taking the speedup,
keep baseline performance with 30% fewer physical registers, one fewer ALU,
or a pipelined (2-cycle) scheduler.  This example quantifies all three on a
few ALU-heavy kernels.

Run with:  python examples/core_downsizing.py
"""

from repro.harness import run_experiment

WORKLOADS = ["gsm_encode_like", "gzip_like", "mesa_osdemo_like", "vortex_like"]


def main():
    print(run_experiment("fig11_regs", suite="specint", workloads=WORKLOADS))
    print()
    print(run_experiment("fig11_width", suite="mediabench", workloads=WORKLOADS))
    print()
    print(run_experiment("fig12", suite="specint", workloads=WORKLOADS))
    print()
    print("Reading the tables: 100% is the full-size baseline machine without RENO.")
    print("Rows show how much of that performance each configuration retains as the")
    print("register file shrinks, the issue width narrows, or the scheduling loop")
    print("grows to two cycles — with RENO recovering most of the loss.")


if __name__ == "__main__":
    main()
