"""Critical-path study: where does RENO's improvement come from? (Figure 9)

Runs a few kernels with per-instruction timing records, builds the
Fields-style critical-path breakdown for the baseline, CF+ME and full RENO,
and prints how ALU criticality melts into fetch criticality once RENO
collapses the ALU operations — the effect §4.3 of the paper describes.

Run with:  python examples/critical_path_study.py
"""

from repro.analysis import analyze_critical_path
from repro.core import RenoConfig, simulate_workload

WORKLOADS = ["gsm_decode_like", "gzip_like", "micro_pointer_chase"]
CONFIGS = {"BASE": None, "CF+ME": RenoConfig.reno_cf_me(), "RENO": RenoConfig.reno_default()}


def main():
    header = f"{'benchmark':22s}{'config':>8s}{'fetch':>8s}{'alu':>8s}{'load':>8s}{'mem':>8s}{'commit':>8s}{'cycles':>9s}"
    print(header)
    print("-" * len(header))
    for name in WORKLOADS:
        for label, config in CONFIGS.items():
            outcome = simulate_workload(name, reno=config, collect_timing=True)
            breakdown = analyze_critical_path(outcome.timing.timing_records)
            fractions = breakdown.fractions()
            print(f"{name:22s}{label:>8s}"
                  f"{fractions['fetch']:>8.1%}{fractions['alu_exec']:>8.1%}"
                  f"{fractions['load_exec']:>8.1%}{fractions['load_mem']:>8.1%}"
                  f"{fractions['commit']:>8.1%}{outcome.cycles:>9d}")
        print()


if __name__ == "__main__":
    main()
