"""Suite study: regenerate Figure 8 style rows for a handful of kernels.

Runs several SPECint-like and MediaBench-like kernels under the baseline and
full RENO, printing per-benchmark elimination breakdowns and speedups — the
same quantities the paper's Figure 8 plots.

Run with:  python examples/suite_study.py  [--full]
"""

import sys

from repro.harness import run_experiment

SPEC_SUBSET = ["gzip_like", "vortex_like", "crafty_like", "parser_like"]
MEDIA_SUBSET = ["adpcm_decode_like", "gsm_decode_like", "jpeg_encode_like", "epic_like"]


def main():
    full = "--full" in sys.argv
    spec = None if full else SPEC_SUBSET
    media = None if full else MEDIA_SUBSET

    print(run_experiment("mix", suite="specint", workloads=spec))
    print()
    print(run_experiment("mix", suite="mediabench", workloads=media))
    print()
    spec_report = run_experiment("fig8", suite="specint", workloads=spec)
    media_report = run_experiment("fig8", suite="mediabench", workloads=media)
    print(spec_report)
    print()
    print(media_report)
    print()
    # Reports are structured, not just printable: pull the headline numbers.
    print(f"SPECint amean elimination: {spec_report.data['amean']['total']:.1%}, "
          f"MediaBench: {media_report.data['amean']['total']:.1%}")


if __name__ == "__main__":
    main()
