"""Suite study: regenerate Figure 8 style rows for a handful of kernels.

Runs several SPECint-like and MediaBench-like kernels under the baseline and
full RENO, printing per-benchmark elimination breakdowns and speedups — the
same quantities the paper's Figure 8 plots.

Run with:  python examples/suite_study.py  [--full]
"""

import sys

from repro.harness import figure8_elimination_and_speedup, instruction_mix

SPEC_SUBSET = ["gzip_like", "vortex_like", "crafty_like", "parser_like"]
MEDIA_SUBSET = ["adpcm_decode_like", "gsm_decode_like", "jpeg_encode_like", "epic_like"]


def main():
    full = "--full" in sys.argv
    spec = None if full else SPEC_SUBSET
    media = None if full else MEDIA_SUBSET

    print(instruction_mix("specint", workloads=spec))
    print()
    print(instruction_mix("mediabench", workloads=media))
    print()
    print(figure8_elimination_and_speedup("specint", workloads=spec))
    print()
    print(figure8_elimination_and_speedup("mediabench", workloads=media))


if __name__ == "__main__":
    main()
