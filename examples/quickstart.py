"""Quickstart: write a small program, run it through the experiment engine.

This example builds a tiny AXP-lite program with the assembler DSL, wraps it
as an ad-hoc workload, and runs the {baseline, RENO} grid through
``run_matrix`` — the same engine behind every registered experiment — then
prints what RENO eliminated and what that did to cycles.

The registered paper figures need no Python at all:

    python -m repro list
    python -m repro run fig8 --workloads gzip_like --json fig8.json

Run with:  python examples/quickstart.py
"""

from repro.core import RenoConfig
from repro.harness import SPEEDUP_BASELINE, run_matrix
from repro.isa.assembler import Assembler
from repro.isa.registers import RegisterNames as R
from repro.uarch import MachineConfig
from repro.workloads.base import Workload


def build_program():
    """A loop full of RENO-friendly idioms: moves, addi chains, stack reloads."""
    asm = Assembler("quickstart")
    asm.word_array("values", list(range(1, 65)))
    asm.la(R.A0, "values")
    asm.li(R.T0, 64)              # loop counter
    asm.li(R.V0, 0)               # accumulator
    asm.label("loop")
    asm.ld(R.T1, 0, R.A0)         # load values[i]
    asm.mov(R.T2, R.T1)           # compiler-style register move (RENO_ME)
    asm.add(R.V0, R.V0, R.T2)
    asm.addi(R.A0, R.A0, 8)       # pointer increment (RENO_CF)
    asm.subi(R.T0, R.T0, 1)       # loop counter decrement (RENO_CF)
    asm.bgt(R.T0, "loop")
    asm.halt()
    return asm.assemble()


def main():
    # Ad-hoc workloads plug into the same grid engine the figures use; the
    # closure builder cannot cross a process boundary, so the engine runs it
    # in-process (keeping the full functional outcome we print below).
    workload = Workload(name="quickstart", suite="example",
                        builder=lambda scale: build_program(),
                        description="quickstart kernel")
    matrix = run_matrix(
        [workload],
        machines={"4wide": MachineConfig.default_4wide()},
        renos={SPEEDUP_BASELINE: None, "RENO": RenoConfig.reno_default()},
        cache=False,
    )
    baseline = matrix.get("quickstart", "4wide", SPEEDUP_BASELINE)
    reno = matrix.get("quickstart", "4wide", "RENO")

    print(f"program: quickstart — {baseline.functional.dynamic_count} dynamic instructions")
    print(f"architectural result (V0): {baseline.functional.state.read(R.V0)}")
    print()
    print(f"{'':24s}{'baseline':>12s}{'RENO':>12s}")
    print(f"{'cycles':24s}{baseline.cycles:>12d}{reno.cycles:>12d}")
    print(f"{'IPC':24s}{baseline.ipc:>12.2f}{reno.ipc:>12.2f}")
    stats = reno.stats
    print(f"{'moves eliminated':24s}{0:>12d}{stats.eliminated_moves:>12d}")
    print(f"{'additions folded':24s}{0:>12d}{stats.eliminated_folds:>12d}")
    print(f"{'loads eliminated':24s}{0:>12d}{stats.eliminated_cse + stats.eliminated_ra:>12d}")
    print(f"{'physical regs allocated':24s}{baseline.stats.pregs_allocated:>12d}{stats.pregs_allocated:>12d}")
    speedup = matrix.speedup("quickstart", "4wide", "RENO") - 1
    print()
    print(f"RENO eliminated {stats.elimination_rate:.1%} of the dynamic instructions "
          f"and improved performance by {speedup:+.1%}.")
    print()
    print("Next: `python -m repro list` shows every registered paper experiment;")
    print("`python -m repro run fig8 --workloads gzip_like --json fig8.json`")
    print("writes a machine-readable report artifact.")


if __name__ == "__main__":
    main()
