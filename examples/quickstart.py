"""Quickstart: write a small program, run it with and without RENO.

This example builds a tiny AXP-lite program with the assembler DSL, runs it
on the paper's 4-wide machine with the conventional renamer and with the full
RENO renamer, and prints what RENO eliminated and what that did to cycles.

Run with:  python examples/quickstart.py
"""

from repro.core import RenoConfig, simulate
from repro.isa.assembler import Assembler
from repro.isa.registers import RegisterNames as R
from repro.uarch import MachineConfig


def build_program():
    """A loop full of RENO-friendly idioms: moves, addi chains, stack reloads."""
    asm = Assembler("quickstart")
    asm.word_array("values", list(range(1, 65)))
    asm.la(R.A0, "values")
    asm.li(R.T0, 64)              # loop counter
    asm.li(R.V0, 0)               # accumulator
    asm.label("loop")
    asm.ld(R.T1, 0, R.A0)         # load values[i]
    asm.mov(R.T2, R.T1)           # compiler-style register move (RENO_ME)
    asm.add(R.V0, R.V0, R.T2)
    asm.addi(R.A0, R.A0, 8)       # pointer increment (RENO_CF)
    asm.subi(R.T0, R.T0, 1)       # loop counter decrement (RENO_CF)
    asm.bgt(R.T0, "loop")
    asm.halt()
    return asm.assemble()


def main():
    program = build_program()
    machine = MachineConfig.default_4wide()

    baseline = simulate(program, machine)
    reno = simulate(program, machine, RenoConfig.reno_default(), trace=baseline.functional)

    print(f"program: {program.name} — {baseline.functional.dynamic_count} dynamic instructions")
    print(f"architectural result (V0): {baseline.functional.state.read(R.V0)}")
    print()
    print(f"{'':24s}{'baseline':>12s}{'RENO':>12s}")
    print(f"{'cycles':24s}{baseline.cycles:>12d}{reno.cycles:>12d}")
    print(f"{'IPC':24s}{baseline.ipc:>12.2f}{reno.ipc:>12.2f}")
    stats = reno.stats
    print(f"{'moves eliminated':24s}{0:>12d}{stats.eliminated_moves:>12d}")
    print(f"{'additions folded':24s}{0:>12d}{stats.eliminated_folds:>12d}")
    print(f"{'loads eliminated':24s}{0:>12d}{stats.eliminated_cse + stats.eliminated_ra:>12d}")
    print(f"{'physical regs allocated':24s}{baseline.stats.pregs_allocated:>12d}{stats.pregs_allocated:>12d}")
    speedup = baseline.cycles / reno.cycles - 1
    print()
    print(f"RENO eliminated {stats.elimination_rate:.1%} of the dynamic instructions "
          f"and improved performance by {speedup:+.1%}.")


if __name__ == "__main__":
    main()
