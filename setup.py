"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
fully offline environments (no ``wheel`` package available, so PEP 660
editable wheels cannot be built) can still do a legacy editable install with
``pip install -e . --no-use-pep517 --no-build-isolation`` or
``python setup.py develop``.
"""

from setuptools import setup

setup()
