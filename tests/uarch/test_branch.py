"""Unit tests for branch prediction structures."""

from repro.functional.trace import DynamicInstruction
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.uarch.branch import (
    BranchTargetBuffer,
    BranchUnit,
    HybridPredictor,
    ReturnAddressStack,
    SaturatingCounterTable,
)
from repro.uarch.config import MachineConfig


def make_branch(pc, taken, target=0x2000, opcode=Opcode.BNE, seq=0):
    instr = Instruction(opcode, rs1=1, target=0)
    return DynamicInstruction(
        seq=seq, index=0, pc=pc, instruction=instr, taken=taken,
        next_pc=target if taken else pc + 4, target_pc=target,
    )


def make_control(opcode, pc, target, seq=0):
    instr = Instruction(opcode, rd=26, rs1=26, target=0)
    return DynamicInstruction(
        seq=seq, index=0, pc=pc, instruction=instr, taken=True,
        next_pc=target, target_pc=target,
    )


def test_saturating_counter_learns():
    table = SaturatingCounterTable(16)
    for _ in range(3):
        table.update(5, True)
    assert table.predict(5)
    for _ in range(4):
        table.update(5, False)
    assert not table.predict(5)


def test_hybrid_predictor_learns_a_bias():
    predictor = HybridPredictor(16 * 1024)
    pc = 0x4000
    for _ in range(20):
        predictor.update(pc, True)
    assert predictor.predict(pc)


def test_hybrid_predictor_learns_alternating_pattern_via_gshare():
    predictor = HybridPredictor(16 * 1024)
    pc = 0x4400
    correct = 0
    total = 200
    outcome = True
    for index in range(total):
        prediction = predictor.predict(pc)
        if prediction == outcome:
            correct += 1
        predictor.update(pc, outcome)
        outcome = not outcome
    # After warm-up the history-based component should track the alternation.
    assert correct > total * 0.6


def test_btb_stores_and_replaces_targets():
    btb = BranchTargetBuffer(entries=8, associativity=2)
    btb.update(0x1000, 0x2000)
    assert btb.predict(0x1000) == 0x2000
    btb.update(0x1000, 0x3000)
    assert btb.predict(0x1000) == 0x3000
    assert btb.predict(0x1234) is None


def test_ras_push_pop_order_and_overflow():
    ras = ReturnAddressStack(2)
    ras.push(0x100)
    ras.push(0x200)
    ras.push(0x300)           # overflows: drops the oldest
    assert ras.pop() == 0x300
    assert ras.pop() == 0x200
    assert ras.pop() is None


def test_branch_unit_counts_mispredictions():
    unit = BranchUnit(MachineConfig.default_4wide())
    pc = 0x1000
    outcomes = []
    for index in range(50):
        outcomes.append(unit.process(make_branch(pc, taken=True, seq=index)))
    # Strongly biased branch: eventually predicted correctly.
    assert not outcomes[-1].mispredicted
    assert unit.conditional_branches == 50
    assert unit.mispredictions < 10


def test_branch_unit_call_return_uses_ras():
    unit = BranchUnit(MachineConfig.default_4wide())
    call = make_control(Opcode.JSR, pc=0x1000, target=0x5000)
    unit.process(call)
    ret_instr = Instruction(Opcode.RET, rs1=26)
    ret = DynamicInstruction(seq=1, index=0, pc=0x5004, instruction=ret_instr,
                             taken=True, next_pc=0x1004, target_pc=0x1004)
    outcome = unit.process(ret)
    assert not outcome.mispredicted
    # A return with an empty / wrong RAS mispredicts.
    bad_ret = DynamicInstruction(seq=2, index=0, pc=0x5004, instruction=ret_instr,
                                 taken=True, next_pc=0x9999, target_pc=0x9999)
    assert unit.process(bad_ret).mispredicted


def test_branch_unit_btb_miss_on_first_taken_branch():
    unit = BranchUnit(MachineConfig.default_4wide())
    branch = make_branch(0x1000, taken=True)
    # Teach the direction predictor first so direction is not the issue.
    for index in range(8):
        unit.direction.update(0x1000, True)
    first = unit.process(branch)
    assert first.mispredicted and first.reason == "btb"
    second = unit.process(make_branch(0x1000, taken=True, seq=1))
    assert not second.mispredicted
