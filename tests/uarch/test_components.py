"""Unit tests for store-sets, LSQ, ROB, issue queue, register file and renamer."""

import pytest

from repro.functional.trace import DynamicInstruction
from repro.isa.instruction import (
    CLASS_INT,
    CLASS_LOAD,
    CLASS_STORE,
    Instruction,
    decode_op,
)
from repro.isa.opcodes import Opcode
from repro.uarch.config import MachineConfig
from repro.uarch.lsq import LoadQueue, StoreQueue, StoreQueueEntry, ranges_overlap
from repro.uarch.regfile import PhysicalRegisterFile
from repro.uarch.rename import BaselineRenamer, SourceOperand
from repro.uarch.rob import ReorderBuffer
from repro.uarch.scheduler import IssueQueue
from repro.uarch.storesets import StoreSets


def dyn(opcode=Opcode.ADD, seq=0, rd=1, rs1=2, rs2=3, imm=0, pc=0x1000):
    instr = Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
    return DynamicInstruction(seq=seq, index=0, pc=pc, instruction=instr)


def class_of(opcode) -> int:
    """Issue-port class id of an opcode, via the decoded-op cache."""
    return decode_op(Instruction(opcode, rd=1, rs1=2, rs2=3))[1]


def add_inst(queue, seq, class_id=CLASS_INT, dispatch=0, sources=()):
    """Insert one instruction into a standalone issue queue's window."""
    queue.window.dispatch_cycle[seq & queue.window.mask] = dispatch
    queue.add(seq, dispatch, sources, class_id)


# ---------------------------------------------------------------------------
# Store sets
# ---------------------------------------------------------------------------


def test_store_sets_assigns_and_merges_sets():
    sets = StoreSets(64)
    assert sets.set_for(0x1000) is None
    sets.train_violation(0x1000, 0x2000)
    assert sets.set_for(0x1000) is not None
    assert sets.set_for(0x1000) == sets.set_for(0x2000)
    sets.train_violation(0x3000, 0x2000)
    assert sets.set_for(0x3000) == sets.set_for(0x1000)


def test_store_sets_requires_power_of_two():
    with pytest.raises(ValueError):
        StoreSets(60)


def test_store_sets_predicts_dependence_after_training():
    sets = StoreSets(64)
    assert not sets.load_predicted_dependent(0x4000)
    sets.train_violation(0x4000, 0x4100)
    assert sets.load_predicted_dependent(0x4000)


# ---------------------------------------------------------------------------
# Load/store queues
# ---------------------------------------------------------------------------


def test_ranges_overlap():
    assert ranges_overlap(0, 8, 4, 8)
    assert not ranges_overlap(0, 8, 8, 8)
    assert ranges_overlap(16, 4, 14, 4)


def test_store_queue_forwarding_full_cover():
    queue = StoreQueue(8)
    entry = StoreQueueEntry(seq=1, pc=0x100, size=8, trace_addr=0x2000,
                            addr=0x2000, value=0xAABBCCDD, executed=True)
    queue.add(entry)
    check = queue.check_load(seq=5, addr=0x2000, size=8)
    assert check.action == "forward"
    assert check.value == 0xAABBCCDD
    # A sub-word load inside the store is also forwardable.
    sub = queue.check_load(seq=5, addr=0x2001, size=1)
    assert sub.action == "forward"
    assert sub.value == 0xCC


def test_store_queue_violation_when_older_store_unexecuted():
    queue = StoreQueue(8)
    queue.add(StoreQueueEntry(seq=1, pc=0x100, size=8, trace_addr=0x2000))
    check = queue.check_load(seq=5, addr=0x2000, size=8)
    assert check.action == "violation"
    assert check.store.seq == 1
    # Non-overlapping unexecuted store is harmless.
    assert queue.check_load(seq=5, addr=0x3000, size=8).action == "memory"


def test_store_queue_wait_on_partial_overlap():
    queue = StoreQueue(8)
    queue.add(StoreQueueEntry(seq=1, pc=0x100, size=4, trace_addr=0x2000,
                              addr=0x2000, value=0x1234, executed=True))
    check = queue.check_load(seq=5, addr=0x2000, size=8)
    assert check.action == "wait_store"


def test_store_queue_only_considers_older_stores():
    queue = StoreQueue(8)
    queue.add(StoreQueueEntry(seq=9, pc=0x100, size=8, trace_addr=0x2000))
    assert queue.check_load(seq=5, addr=0x2000, size=8).action == "memory"


def test_store_queue_capacity_and_commit():
    queue = StoreQueue(2)
    queue.add(StoreQueueEntry(seq=1, pc=0, size=8, trace_addr=0))
    queue.add(StoreQueueEntry(seq=2, pc=0, size=8, trace_addr=8))
    assert queue.full
    with pytest.raises(RuntimeError):
        queue.add(StoreQueueEntry(seq=3, pc=0, size=8, trace_addr=16))
    queue.pop_committed(1)
    assert not queue.full
    with pytest.raises(KeyError):
        queue.pop_committed(99)


def test_load_queue_capacity():
    queue = LoadQueue(2)
    queue.add(1)
    queue.add(2)
    with pytest.raises(RuntimeError):
        queue.add(3)
    queue.remove(1)
    queue.add(3)
    queue.remove(42)   # removing an unknown load is a no-op


# ---------------------------------------------------------------------------
# ROB
# ---------------------------------------------------------------------------


def test_rob_order_and_capacity():
    rob = ReorderBuffer(2)
    rob.add(0)
    rob.add(1)
    assert rob.full
    with pytest.raises(RuntimeError):
        rob.add(2)
    assert rob.head() == 0
    assert rob.pop_head() == 0
    assert rob.head() == 1
    assert rob.free_entries == 1


def test_rob_rejects_out_of_order_append():
    rob = ReorderBuffer(4)
    rob.add(0)
    with pytest.raises(ValueError):
        rob.add(2)          # slots are allocated strictly in program order
    with pytest.raises(IndexError):
        ReorderBuffer(4).pop_head()


# ---------------------------------------------------------------------------
# Issue queue
# ---------------------------------------------------------------------------


def test_issue_class_mapping():
    assert class_of(Opcode.ADD) == CLASS_INT
    assert class_of(Opcode.LD) == CLASS_LOAD
    assert class_of(Opcode.ST) == CLASS_STORE
    assert class_of(Opcode.BNE) == CLASS_INT


def test_issue_queue_respects_class_and_total_limits():
    config = MachineConfig.default_4wide()       # 3 int, 1 load, total 4
    queue = IssueQueue(config)
    for seq in range(6):
        add_inst(queue, seq, CLASS_INT)
    for seq in range(6, 9):
        add_inst(queue, seq, CLASS_LOAD)
    selected = queue.select(cycle=5, ready_fn=lambda seq, cycle: True)
    assert len(selected) == 4
    int_selected = [s for s in selected if s < 6]
    load_selected = [s for s in selected if s >= 6]
    assert len(int_selected) == 3
    assert len(load_selected) == 1
    # Oldest-first selection.
    assert int_selected == [0, 1, 2]


def test_issue_queue_skips_instructions_dispatched_this_cycle():
    queue = IssueQueue(MachineConfig.default_4wide())
    add_inst(queue, 0, CLASS_INT, dispatch=5)
    assert queue.select(cycle=5, ready_fn=lambda seq, cycle: True) == []
    assert len(queue.select(cycle=6, ready_fn=lambda seq, cycle: True)) == 1


def test_issue_queue_ready_fn_gates_loads_only():
    # The ready_fn veto models load memory-ordering conditions, so it only
    # applies to load-class instructions; other classes issue once their
    # operands are available.
    queue = IssueQueue(MachineConfig.default_4wide())
    add_inst(queue, 0, CLASS_INT)
    add_inst(queue, 1, CLASS_LOAD)
    selected = queue.select(cycle=3, ready_fn=lambda seq, cycle: False)
    assert selected == [0]
    assert len(queue) == 1
    # The rejected load stays in its ready list and issues once the veto lifts.
    selected = queue.select(cycle=4, ready_fn=lambda seq, cycle: True)
    assert selected == [1]
    assert len(queue) == 0


def test_issue_queue_event_driven_wakeup():
    # An instruction with a pending operand becomes selectable only at the
    # producer's announced ready cycle (via the cycle-indexed wakeup queue).
    prf = PhysicalRegisterFile(64, [0] * 32)
    queue = IssueQueue(MachineConfig.default_4wide(), ready_cycles=prf.ready_cycle)
    prf.mark_pending(40)
    add_inst(queue, 0, CLASS_INT, sources=[SourceOperand(40)])
    assert queue.window.waiting_ops[0] == 1
    assert queue.select(cycle=1) == []
    # Producer writes p40, visible at cycle 5.
    prf.write(40, 123, 5)
    queue.wakeup(40, 5)
    assert queue.select(cycle=4) == []
    assert queue.select(cycle=5) == [0]
    assert queue.window.waiting_ops[0] == 0


def test_issue_queue_idle_until():
    prf = PhysicalRegisterFile(64, [0] * 32)
    queue = IssueQueue(MachineConfig.default_4wide(), ready_cycles=prf.ready_cycle)
    assert queue.idle_until() is not None        # empty queue: idle forever
    prf.write(40, 7, 9)                          # ready in the future
    add_inst(queue, 0, CLASS_INT, sources=[SourceOperand(40)])
    assert queue.idle_until() == 9               # next wakeup cycle
    assert queue.select(cycle=9) == [0]
    assert len(queue) == 0


# ---------------------------------------------------------------------------
# Physical register file
# ---------------------------------------------------------------------------


def test_prf_initial_state_and_readiness():
    prf = PhysicalRegisterFile(8, [10, 20, 30])
    assert prf.read(1) == 20
    assert prf.is_ready(2, 0)
    assert not prf.is_ready(5, 0)
    prf.write(5, 99, ready_cycle=7)
    assert prf.read(5) == 99
    assert not prf.is_ready(5, 6)
    assert prf.is_ready(5, 7)
    prf.mark_pending(5)
    assert not prf.is_ready(5, 1000)


def test_prf_rejects_too_few_registers():
    with pytest.raises(ValueError):
        PhysicalRegisterFile(2, [1, 2, 3])


# ---------------------------------------------------------------------------
# Baseline renamer
# ---------------------------------------------------------------------------


def test_baseline_renamer_allocates_and_frees():
    renamer = BaselineRenamer(40)
    assert renamer.free_register_count() == 8
    result = renamer.rename_group([dyn(Opcode.ADD, rd=1, rs1=2, rs2=3)])[0]
    assert result.allocated
    assert result.dest_preg == 32
    assert result.prev_dest_preg == 1
    assert renamer.free_register_count() == 7
    renamer.commit(result)
    assert renamer.free_register_count() == 8


def test_baseline_renamer_intra_group_dependence():
    renamer = BaselineRenamer(64)
    group = [
        dyn(Opcode.ADD, seq=0, rd=1, rs1=2, rs2=3),
        dyn(Opcode.ADD, seq=1, rd=4, rs1=1, rs2=1),     # reads the new r1
    ]
    first, second = renamer.rename_group(group)
    assert second.sources[0].preg == first.dest_preg
    assert second.sources[1].preg == first.dest_preg


def test_baseline_renamer_stalls_when_out_of_registers():
    renamer = BaselineRenamer(33)
    assert renamer.rename_next(dyn(Opcode.ADD, rd=1)) is not None
    assert renamer.rename_next(dyn(Opcode.ADD, rd=2)) is None


def test_baseline_renamer_zero_register_destination_not_renamed():
    renamer = BaselineRenamer(64)
    result = renamer.rename_next(dyn(Opcode.ADD, rd=31))
    assert result.dest_preg is None
    assert not result.allocated
