"""Property tests: the compiled cycle-loop backend is bit-identical to python.

The backend contract (:mod:`repro.uarch.backend`) is that backends differ
in *speed only*: every simulation observable — final architectural state,
statistics, occupancy histograms, snapshots — must be identical whichever
backend ran the cycle loop.  Seeded random programs (reusing the scheduler
equivalence generator: ALU ops, moves, folds, loads, stores, loops) are
run through both backends under several machine and RENO configurations.

The strongest property here is the **lockstep snapshot** test: both
backends run the same program in slices and the pickled
:meth:`~repro.uarch.core.Pipeline.snapshot` bytes must match at every
slice boundary — full mutable-state equality at intermediate cycles, not
just at the end.  Snapshot hand-offs *across* backends (python → compiled
→ python) certify that a fleet can mix backends mid-run.

Compiled-specific tests skip (not fail) when no C toolchain is present;
the fallback tests force that situation with ``REPRO_NO_CC=1`` and assert
the degradation to python is silent and result-identical.
"""

import pickle
from dataclasses import fields

import pytest
from test_scheduler_equivalence import random_program

from repro.core import RenoConfig, RenoRenamer
from repro.functional.simulator import FunctionalSimulator
from repro.uarch.backend import backend_names, get_backend, resolve_backend
from repro.uarch.compiled import build
from repro.uarch.config import MachineConfig
from repro.uarch.core import Pipeline

SEEDS = [3, 59, 977]

CONFIGS = {
    "BASE": None,
    "RENO": RenoConfig.reno_default(),
    "CF+ME": RenoConfig.reno_cf_me(),
}

MACHINES = {
    "4wide": MachineConfig.default_4wide(),
    "6wide": MachineConfig.default_6wide(),
    "sched2": MachineConfig.default_4wide().with_scheduler_latency(2),
}

#: Skip marker for tests that need the real compiled kernel.
needs_compiled = pytest.mark.skipif(
    not get_backend("compiled").available(),
    reason="no C toolchain on this runner")


def build_run(seed, length=200):
    program = random_program(seed, length=length).assemble()
    trace = FunctionalSimulator(program).run().trace
    return program, trace


def make_pipeline(program, trace, reno, backend, machine=None,
                  record_stats=False):
    machine = machine or MachineConfig.default_4wide()
    renamer = RenoRenamer(machine.num_physical_regs, reno) \
        if reno is not None else None
    return Pipeline(program, trace, machine, renamer=renamer,
                    record_stats=record_stats, backend=backend)


def stats_dict(result):
    return {f.name: getattr(result.stats, f.name) for f in fields(result.stats)}


def assert_results_identical(compiled, python):
    assert stats_dict(compiled) == stats_dict(python)
    assert compiled.final_registers == python.final_registers
    assert compiled.finished and python.finished


# ---------------------------------------------------------------------------
# Backend-vs-backend equivalence
# ---------------------------------------------------------------------------


@needs_compiled
@pytest.mark.parametrize("config_name", list(CONFIGS))
@pytest.mark.parametrize("seed", SEEDS)
def test_compiled_matches_python(seed, config_name):
    program, trace = build_run(seed)
    reno = CONFIGS[config_name]
    compiled_pipeline = make_pipeline(program, trace, reno, "compiled")
    assert compiled_pipeline.backend_name == "compiled"
    compiled = compiled_pipeline.run()
    python = make_pipeline(program, trace, reno, "python").run()
    assert_results_identical(compiled, python)


@needs_compiled
@pytest.mark.parametrize("machine_name", list(MACHINES))
def test_compiled_matches_python_across_machines(machine_name):
    program, trace = build_run(4242)
    machine = MACHINES[machine_name]
    compiled = make_pipeline(program, trace, RenoConfig.reno_default(),
                             "compiled", machine=machine).run()
    python = make_pipeline(program, trace, RenoConfig.reno_default(),
                           "python", machine=machine).run()
    assert_results_identical(compiled, python)


@needs_compiled
@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_occupancy_histograms_identical(config_name):
    """The observability layer sees the same per-cycle history either way."""
    program, trace = build_run(SEEDS[0])
    reno = CONFIGS[config_name]
    compiled = make_pipeline(program, trace, reno, "compiled",
                             record_stats=True).run()
    python = make_pipeline(program, trace, reno, "python",
                           record_stats=True).run()
    assert compiled.stats.occupancy is not None
    assert (compiled.stats.occupancy.to_dict()
            == python.stats.occupancy.to_dict())
    assert_results_identical(compiled, python)


def to_plain(obj, on_path=None):
    """A pure-data, aliasing-free projection of an object graph.

    Pickle bytes are unusable for cross-backend comparison: marshal-out
    rebuilds objects, so the python side's shared references become
    distinct (equal) objects and the pickle memo encodes them differently.
    This projection compares *values only* — primitives pass through,
    containers recurse, arbitrary objects become ``(classname, attrs)``
    pairs, and reference cycles collapse to a marker.
    """
    if isinstance(obj, (int, float, str, bytes, bool, type(None))):
        return obj
    on_path = on_path or set()
    if id(obj) in on_path:
        return "<cycle>"
    on_path = on_path | {id(obj)}
    if isinstance(obj, (list, tuple)):
        return [to_plain(item, on_path) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return ["<set>", sorted((to_plain(item, on_path) for item in obj),
                                key=repr)]
    if isinstance(obj, dict):
        # Insertion order is a rebuild artifact (marshal-out repopulates
        # index dicts in scan order); only the mapping itself is state.
        return sorted(((to_plain(k, on_path), to_plain(v, on_path))
                       for k, v in obj.items()), key=repr)
    attrs = {}
    for klass in type(obj).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if hasattr(obj, slot):
                attrs[slot] = getattr(obj, slot)
    attrs.update(getattr(obj, "__dict__", {}))
    return (type(obj).__name__,
            [(name, to_plain(value, on_path))
             for name, value in sorted(attrs.items())])


def canonical_snapshot(pipeline):
    """Plain-data snapshot state after the marshaller's two documented
    normalisations (see :mod:`repro.uarch.compiled.marshal`): window
    ``value`` slots still holding the construction-time ``None`` read as
    ``0``, and in-flight ``RenameResult`` objects drop their (already
    consumed) ``sources``.  Everything else must match value for value.
    """
    snapshot = pipeline.snapshot()           # state is a detached deep copy
    window = snapshot.state["window"]
    window.value = [0 if v is None else v for v in window.value]
    for result in window.rename:
        if result is not None:
            result.sources = []
    return to_plain(snapshot.state)


@needs_compiled
@pytest.mark.parametrize("seed", [SEEDS[0]])
def test_lockstep_snapshots_match_every_slice(seed):
    """Full mutable-state equality at every slice boundary, both backends.

    ``snapshot()`` captures everything the cycle loop mutates (and is
    itself lint-enforced complete — ``snapshot-coverage``), so equal
    pickled snapshots at cycle k mean the backends agree on *all*
    intermediate state, not just on the final result.  ``backend`` /
    ``backend_name`` are snapshot-exempt, which is exactly what makes this
    comparison well-defined.
    """
    program, trace = build_run(seed)
    reno = RenoConfig.reno_default()
    compiled_pipeline = make_pipeline(program, trace, reno, "compiled")
    python_pipeline = make_pipeline(program, trace, reno, "python")
    slice_cycles = 211          # a handful of mid-burst boundaries; the
    slices = 0                  # projection cost is per boundary, not per cycle
    while True:
        compiled = compiled_pipeline.run(max_cycles=slice_cycles)
        python = python_pipeline.run(max_cycles=slice_cycles)
        assert compiled.finished == python.finished
        if compiled.finished:
            break
        slices += 1
        assert (canonical_snapshot(compiled_pipeline)
                == canonical_snapshot(python_pipeline)), (
            f"state diverged by slice {slices} (seed={seed})")
    assert slices > 1
    assert_results_identical(compiled, python)


@needs_compiled
@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_snapshot_handoff_across_backends(config_name):
    """python → compiled → python hand-offs finish bit-identically."""
    program, trace = build_run(SEEDS[1])
    reno = CONFIGS[config_name]
    reference = make_pipeline(program, trace, reno, "python").run()

    chain = ["python", "compiled", "python", "compiled"]
    pipeline = make_pipeline(program, trace, reno, chain[0])
    hops = 0
    result = pipeline.run(max_cycles=113)
    while not result.finished:
        hops += 1
        snapshot = pickle.loads(pickle.dumps(pipeline.snapshot()))
        pipeline = make_pipeline(program, trace, reno,
                                 chain[hops % len(chain)])
        pipeline.restore(snapshot)
        result = pipeline.run(max_cycles=113)
    assert hops >= 2, "program too short to exercise a backend hand-off"
    assert_results_identical(result, reference)


# ---------------------------------------------------------------------------
# Selection, fallback and degradation
# ---------------------------------------------------------------------------


def test_backend_registry_lists_both_backends():
    names = backend_names()
    assert "python" in names
    assert "compiled" in names


def test_unknown_backend_name_raises():
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("turbo")


def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "python")
    assert resolve_backend(None).name == "python"
    monkeypatch.setenv("REPRO_BACKEND", "turbo")
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend(None)


def test_explicit_argument_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "turbo")
    assert resolve_backend("python").name == "python"


def test_requested_compiled_degrades_silently_without_toolchain(monkeypatch):
    """``REPRO_NO_CC=1`` + ``backend="compiled"`` must run — on python."""
    monkeypatch.setenv("REPRO_NO_CC", "1")
    build.reset_cache()
    try:
        program, trace = build_run(SEEDS[0], length=60)
        pipeline = make_pipeline(program, trace, None, "compiled")
        assert pipeline.backend_name == "python"
        degraded = pipeline.run()
        reference = make_pipeline(program, trace, None, "python").run()
        assert_results_identical(degraded, reference)
    finally:
        monkeypatch.delenv("REPRO_NO_CC")
        build.reset_cache()


@needs_compiled
def test_timing_pipelines_run_on_the_python_reference():
    """``collect_timing`` is unsupported by the kernel: the compiled
    backend's ``supports()`` hands such pipelines to the reference loop."""
    program, trace = build_run(SEEDS[0], length=60)
    machine = MachineConfig.default_4wide()
    pipeline = Pipeline(program, trace, machine, collect_timing=True,
                        backend="compiled")
    timed = pipeline.run()
    reference = Pipeline(program, trace, machine, collect_timing=True,
                         backend="python").run()
    assert timed.timing_records == reference.timing_records
    assert_results_identical(timed, reference)
