"""Integration tests for the baseline (RENO-less) pipeline."""

import pytest

from repro.functional import FunctionalSimulator
from repro.isa.assembler import Assembler
from repro.isa.registers import RegisterNames as R
from repro.uarch import MachineConfig, Pipeline
from repro.workloads import get_workload


def run_program(asm_or_program, config=None, **kwargs):
    program = asm_or_program.assemble() if isinstance(asm_or_program, Assembler) else asm_or_program
    functional = FunctionalSimulator(program).run()
    pipeline = Pipeline(program, functional.trace, config or MachineConfig.default_4wide(), **kwargs)
    return functional, pipeline.run()


def run_workload(name, config=None, scale=1, **kwargs):
    return run_program(get_workload(name).build(scale), config, **kwargs)


# ---------------------------------------------------------------------------
# Correctness: the timing simulator reproduces architectural state
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", [
    "micro_sum", "micro_moves", "micro_addi_chain", "micro_redundant_loads",
    "micro_call_spill", "micro_store_load", "micro_pointer_chase",
    "micro_branchy", "micro_matvec",
])
def test_baseline_pipeline_matches_functional_state(name):
    functional, result = run_workload(name)
    assert result.final_registers == list(functional.state.snapshot())
    assert result.stats.committed == functional.dynamic_count


@pytest.mark.parametrize("name", ["gzip_like", "vortex_like", "adpcm_decode_like", "jpeg_encode_like"])
def test_baseline_pipeline_matches_functional_state_on_suite_kernels(name):
    functional, result = run_workload(name)
    assert result.final_registers == list(functional.state.snapshot())


def test_final_memory_matches_functional_memory():
    functional, _ = run_workload("micro_store_load")
    program = get_workload("micro_store_load").build(1)
    functional = FunctionalSimulator(program).run()
    pipeline = Pipeline(program, functional.trace, MachineConfig.default_4wide())
    pipeline.run()
    assert pipeline.memory == functional.memory


# ---------------------------------------------------------------------------
# Timing sanity
# ---------------------------------------------------------------------------


def test_ipc_is_bounded_by_machine_width():
    _, result = run_workload("micro_sum")
    assert 0.0 < result.ipc <= result.config.commit_width


def _serial_chain_loop(iterations=100, body=8):
    """A loop whose body is a serial dependence chain (I$-warm after iteration 1)."""
    asm = Assembler("chain_loop")
    asm.li(R.T0, 0)
    asm.li(R.T1, iterations)
    asm.label("loop")
    for _ in range(body):
        asm.add(R.T0, R.T0, R.T1)    # serial: each add depends on the previous
    asm.subi(R.T1, R.T1, 1)
    asm.bgt(R.T1, "loop")
    asm.halt()
    return asm


def _parallel_loop(iterations=100):
    """A loop whose body is independent work."""
    asm = Assembler("parallel_loop")
    for index in range(8):
        asm.li(1 + index, index + 1)
    asm.li(R.S0, iterations)
    asm.label("loop")
    asm.add(R.T0, R.T1, R.T2)
    asm.add(R.T3, R.T4, R.T5)
    asm.xor(R.T6, R.T7, R.T1)
    asm.and_(R.T8, R.T2, R.T4)
    asm.or_(R.T0, R.T1, R.T5)
    asm.add(R.T3, R.T2, R.T7)
    asm.subi(R.S0, R.S0, 1)
    asm.bgt(R.S0, "loop")
    asm.halt()
    return asm


def test_serial_dependence_chain_has_low_ipc():
    _, result = run_program(_serial_chain_loop())
    assert result.ipc < 1.6


def test_independent_instructions_reach_high_ipc():
    # Long enough that cold-start instruction-cache misses are amortised.
    _, result = run_program(_parallel_loop(400))
    assert result.ipc > 2.0


def test_two_cycle_scheduler_slows_dependent_chains():
    program = _serial_chain_loop().assemble()
    functional = FunctionalSimulator(program).run()
    fast = Pipeline(program, functional.trace, MachineConfig.default_4wide()).run()
    slow = Pipeline(program, functional.trace,
                    MachineConfig.default_4wide().with_scheduler_latency(2)).run()
    assert slow.cycles > fast.cycles * 1.3


def test_narrow_issue_width_slows_parallel_code():
    _, wide = run_workload("micro_matvec", MachineConfig.default_4wide())
    _, narrow = run_workload("micro_matvec", MachineConfig.default_4wide().with_issue(2, 2))
    assert narrow.cycles > wide.cycles


def test_six_wide_machine_is_not_slower():
    _, four = run_workload("gzip_like", MachineConfig.default_4wide())
    _, six = run_workload("gzip_like", MachineConfig.default_6wide())
    assert six.cycles <= four.cycles * 1.02


def test_branch_mispredictions_cost_cycles():
    functional, result = run_workload("micro_branchy")
    assert result.stats.branch_mispredictions > 0
    # A data-dependent-branch kernel should run well below peak IPC.
    assert result.ipc < 3.0


def test_pointer_chase_misses_the_cache():
    _, result = run_workload("micro_pointer_chase", scale=3)
    assert result.stats.dcache_misses > 0
    assert result.ipc < 1.0


def test_store_forwarding_happens_for_stack_traffic():
    _, result = run_workload("micro_store_load")
    assert result.stats.store_forwards > 0


def test_memory_order_violations_are_rare_after_training():
    _, result = run_workload("micro_store_load", scale=4)
    loads = sum(1 for _ in range(1))  # placeholder to keep flake-free
    assert result.stats.memory_order_violations <= 6


def test_small_register_file_slows_execution():
    _, big = run_workload("gsm_encode_like", MachineConfig.default_4wide())
    _, small = run_workload("gsm_encode_like", MachineConfig.default_4wide().with_registers(48))
    assert small.cycles >= big.cycles
    assert small.stats.rename_stall_cycles > 0


def test_timing_records_collected_when_requested():
    program = get_workload("micro_sum").build(1)
    functional = FunctionalSimulator(program).run()
    result = Pipeline(program, functional.trace, collect_timing=True).run()
    assert result.timing_records is not None
    assert len(result.timing_records) == functional.dynamic_count
    seqs = [record.seq for record in result.timing_records]
    assert seqs == sorted(seqs)
    for record in result.timing_records:
        assert record.retire_cycle >= record.complete_cycle >= record.fetch_cycle


def test_stats_accounting_consistency():
    _, result = run_workload("gzip_like")
    stats = result.stats
    assert stats.fetched == stats.committed
    assert stats.issued <= stats.committed
    assert stats.cycles > 0
    assert stats.max_pregs_in_use <= result.config.num_physical_regs


def test_config_validation_rejects_bad_configs():
    with pytest.raises(ValueError):
        MachineConfig(num_physical_regs=16).validate()
    with pytest.raises(ValueError):
        MachineConfig(scheduler_latency=0).validate()
