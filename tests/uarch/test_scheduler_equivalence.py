"""Property-based equivalence tests: SoA core vs the object-model scheduler.

The issue queue used to select instructions with a full per-cycle scan of an
object-based window, re-checking every resident instruction's operands
against the physical register file.  That algorithm survives here as
:func:`reference_select` / :class:`ReferenceIssueQueue` — an **object-model**
reference (one ``_RefInst`` record per resident instruction, full rescan
every cycle, wakeup events ignored) that drives the exact same
structure-of-arrays pipeline.  Seeded random programs (straight-line and
branchy, with loads, stores and every elimination idiom) are run through
both schedulers under several machine and RENO configurations, asserting:

* identical per-cycle issue sets (every instruction issues on the same cycle
  with both schedulers), and
* identical final statistics (cycles, stalls, violations, eliminations...).

Seeds come from ``random.Random``, so every case is reproducible without a
hypothesis dependency.
"""

import random
from dataclasses import fields

import pytest

from repro.core import RenoConfig, RenoRenamer
from repro.functional.simulator import FunctionalSimulator
from repro.isa.assembler import Assembler
from repro.isa.instruction import CLASS_LOAD
from repro.uarch.config import MachineConfig
from repro.uarch.core import Pipeline
from repro.uarch.scheduler import IssueQueue

#: Registers the generator may use (avoids sp/gp/zero and the base pointer).
USABLE_REGS = list(range(0, 24))
BASE_REG = 26

SEEDS = [3, 17, 59, 257, 977]

CONFIGS = {
    "BASE": None,
    "RENO": RenoConfig.reno_default(),
    "CF+ME": RenoConfig.reno_cf_me(),
}

MACHINES = {
    "4wide": MachineConfig.default_4wide(),
    "6wide": MachineConfig.default_6wide(),
    "sched2": MachineConfig.default_4wide().with_scheduler_latency(2),
}


# ---------------------------------------------------------------------------
# Reference scheduler: the pre-rewrite per-cycle full scan over objects
# ---------------------------------------------------------------------------


class _RefInst:
    """One resident instruction in the object-model reference window."""

    __slots__ = ("seq", "sources", "class_id", "dispatch_cycle")

    def __init__(self, seq, sources, class_id, dispatch_cycle):
        self.seq = seq
        self.sources = list(sources)
        self.class_id = class_id
        self.dispatch_cycle = dispatch_cycle


def reference_select(entries, config, ready_cycles, cycle, ready_fn):
    """The original full-scan wakeup/select algorithm over object records.

    Walks the whole window oldest-first every cycle, re-checking each
    instruction's operand readiness against the register file, subject to
    per-class and total issue limits.  Returns (selected, kept_entries).
    """
    limits = [config.int_issue, config.load_issue,
              config.store_issue, config.fp_issue]
    remaining_total = config.total_issue
    selected = []
    kept = []
    index = 0
    count = len(entries)
    while index < count and remaining_total:
        inst = entries[index]
        index += 1
        operands_ready = all(
            ready_cycles[source.preg] <= cycle for source in inst.sources
        )
        if (limits[inst.class_id] == 0
                or inst.dispatch_cycle >= cycle      # earliest issue is next cycle
                or not operands_ready
                or (inst.class_id == CLASS_LOAD
                    and ready_fn is not None and not ready_fn(inst.seq, cycle))):
            kept.append(inst)
            continue
        limits[inst.class_id] -= 1
        remaining_total -= 1
        selected.append(inst)
    kept.extend(entries[index:])
    return selected, kept


class ReferenceIssueQueue(IssueQueue):
    """Drop-in IssueQueue implementing the old full-scan object model.

    Keeps a plain window list of ``_RefInst`` records and re-derives
    readiness from the register file every cycle; wakeup events are ignored.
    ``_ready_total`` mirrors the entry count so the pipeline's fast paths
    (select guard and idle fast-forward) treat every occupied cycle as
    potentially selectable, forcing the cycle-by-cycle behaviour of the
    original loop.
    """

    def __init__(self, config, window, prf):
        super().__init__(config, window, prf.ready_cycle)
        self._ref_prf = prf
        self.entries = []

    def add(self, seq, cycle=0, sources=None, class_id=0):
        if len(self.entries) >= self.capacity:
            raise RuntimeError("issue queue overflow (dispatch should have stalled)")
        self.entries.append(_RefInst(seq, sources or (), class_id, cycle))
        self._count = len(self.entries)
        self._ready_total = self._count  # force select every occupied cycle

    def wakeup(self, preg, ready_cycle):  # wakeups don't exist in this model
        pass

    def select(self, cycle, ready_fn=None):
        selected, kept = reference_select(
            self.entries, self.config, self._ref_prf.ready_cycle, cycle, ready_fn)
        self.entries = kept
        self._count = len(kept)
        self._ready_total = self._count
        return [inst.seq for inst in selected]


# ---------------------------------------------------------------------------
# Random program generation
# ---------------------------------------------------------------------------


def random_program(seed: int, length: int = 240) -> Assembler:
    """A random kernel with ALU ops, moves, folds, loads, stores and loops."""
    rng = random.Random(seed)
    asm = Assembler(f"sched_equiv_{seed}")
    asm.word_array("data", [rng.randrange(0, 1 << 16) for _ in range(32)])
    asm.la(BASE_REG, "data")
    for reg in USABLE_REGS[:8]:
        asm.li(reg, rng.randrange(0, 1 << 12))
    # A short counted loop wrapped around a random body exercises branches,
    # the front-end stall machinery and repeated wakeups on the same pregs.
    asm.li(25, rng.randrange(2, 5))
    asm.label("loop")
    for _ in range(length):
        choice = rng.random()
        rd = rng.choice(USABLE_REGS)
        rs = rng.choice(USABLE_REGS)
        if choice < 0.18:
            asm.mov(rd, rs)
        elif choice < 0.40:
            asm.addi(rd, rs, rng.randrange(0, 256))
        elif choice < 0.50:
            asm.subi(rd, rs, rng.randrange(0, 256))
        elif choice < 0.62:
            asm.add(rd, rs, rng.choice(USABLE_REGS))
        elif choice < 0.70:
            asm.mul(rd, rs, rng.choice(USABLE_REGS))
        elif choice < 0.85:
            asm.ld(rd, 8 * rng.randrange(0, 32), BASE_REG)
        else:
            asm.st(rs, 8 * rng.randrange(0, 32), BASE_REG)
    asm.subi(25, 25, 1)
    asm.bne(25, "loop")
    asm.halt()
    return asm


def run_pipeline(program, trace, machine, reno, reference: bool):
    renamer = RenoRenamer(machine.num_physical_regs, reno) if reno is not None else None
    pipeline = Pipeline(program, trace, machine, renamer=renamer, collect_timing=True)
    if reference:
        queue = ReferenceIssueQueue(machine, pipeline.window, pipeline.prf)
        pipeline.issue_queue = queue
        # Rebind the producer-side aliases captured at construction time.
        pipeline._iq_waiters = queue._waiters
        pipeline._iq_wakeup = queue.wakeup
    return pipeline.run()


def issue_schedule(result):
    """{seq: issue cycle} for every instruction that executed."""
    return {record.seq: record.issue_cycle for record in result.timing_records}


def stats_dict(result):
    return {f.name: getattr(result.stats, f.name) for f in fields(result.stats)}


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_event_driven_matches_full_scan(seed, config_name):
    program = random_program(seed).assemble()
    trace = FunctionalSimulator(program).run().trace
    machine = MachineConfig.default_4wide()

    reference = run_pipeline(program, trace, machine, CONFIGS[config_name], reference=True)
    event = run_pipeline(program, trace, machine, CONFIGS[config_name], reference=False)

    assert issue_schedule(event) == issue_schedule(reference), (
        f"per-cycle issue sets diverged (seed={seed}, config={config_name})"
    )
    assert stats_dict(event) == stats_dict(reference)
    assert event.final_registers == reference.final_registers


@pytest.mark.parametrize("machine_name", list(MACHINES))
def test_event_driven_matches_full_scan_across_machines(machine_name):
    program = random_program(4242).assemble()
    trace = FunctionalSimulator(program).run().trace
    machine = MACHINES[machine_name]

    reference = run_pipeline(program, trace, machine, RenoConfig.reno_default(), reference=True)
    event = run_pipeline(program, trace, machine, RenoConfig.reno_default(), reference=False)

    assert issue_schedule(event) == issue_schedule(reference)
    assert stats_dict(event) == stats_dict(reference)


def test_reference_queue_actually_diverges_when_abused():
    """Sanity check that the comparison has teeth: forcing the event-driven
    queue to skip wakeups would hang, so instead check the reference model
    issues nothing while operands are pending."""
    program = random_program(7, length=40).assemble()
    trace = FunctionalSimulator(program).run().trace
    machine = MachineConfig.default_4wide()
    result = run_pipeline(program, trace, machine, None, reference=True)
    schedule = issue_schedule(result)
    assert schedule, "expected executed instructions"
    # No instruction can issue on its dispatch cycle.
    dispatch = {r.seq: r.dispatch_cycle for r in result.timing_records}
    assert all(schedule[seq] > dispatch[seq] for seq in schedule
               if schedule[seq] >= 0)


# ---------------------------------------------------------------------------
# Backend-vs-backend: the compiled kernel joins the equivalence panel
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    not __import__("repro.uarch.backend", fromlist=["get_backend"])
        .get_backend("compiled").available(),
    reason="no C toolchain on this runner")
@pytest.mark.parametrize("config_name", list(CONFIGS))
@pytest.mark.parametrize("machine_name", list(MACHINES))
def test_compiled_backend_matches_the_event_driven_loop(machine_name,
                                                        config_name):
    """Three-way closure: the object-model reference pins the event-driven
    python loop (tests above), and the compiled kernel must match that loop
    on statistics and final architectural state — so all three agree.
    (Timing records stay python-only: the kernel's ``supports()`` hands
    ``collect_timing`` pipelines to the reference loop, see
    ``tests/uarch/test_backends.py``.)"""
    program = random_program(31415).assemble()
    trace = FunctionalSimulator(program).run().trace
    machine = MACHINES[machine_name]
    reno = CONFIGS[config_name]

    def run(backend):
        renamer = RenoRenamer(machine.num_physical_regs, reno) \
            if reno is not None else None
        pipeline = Pipeline(program, trace, machine, renamer=renamer,
                            backend=backend)
        assert pipeline.backend_name == backend
        return pipeline.run()

    compiled = run("compiled")
    python = run("python")
    assert stats_dict(compiled) == stats_dict(python)
    assert compiled.final_registers == python.final_registers
