"""Tests for the occupancy/utilization observability layer.

Unit tests for the :mod:`repro.uarch.observe` containers, plus whole-run
invariants: every per-cycle histogram must cover exactly ``cycles``
samples, the issue histogram's weighted sum must equal the issued-
instruction count, the stall-reason buckets must sum to the fetch-stall
cycle count, and recording must not perturb the simulated results.
"""

from dataclasses import fields

import pytest

from repro.core import RenoConfig
from repro.core.simulator import simulate_workload
from repro.functional.simulator import FunctionalSimulator
from repro.uarch.config import MachineConfig
from repro.uarch.core import Pipeline
from repro.uarch.observe import (
    ISSUE_CLASS_NAMES,
    STALL_REASON_NAMES,
    OccupancyStats,
    TimelineRecorder,
)
from repro.workloads.base import get_workload

WORKLOADS = ["micro_addi_chain", "micro_store_load", "micro_branchy"]

CONFIGS = {
    "BASE": None,
    "RENO": RenoConfig.reno_default(),
}


def run_with_stats(workload, reno, timeline_stride=0):
    """One pipeline run with recording on, returning (pipeline, result)."""
    program = get_workload(workload).build(1)
    trace = FunctionalSimulator(program, 2_000_000).run().trace
    machine = MachineConfig.default_4wide()
    renamer = None
    if reno is not None:
        from repro.core.renamer import RenoRenamer

        renamer = RenoRenamer(machine.num_physical_regs, reno)
    pipeline = Pipeline(program, trace, machine, renamer=renamer,
                        record_stats=True, timeline_stride=timeline_stride)
    return pipeline, pipeline.run()


@pytest.mark.parametrize("config_name", list(CONFIGS))
@pytest.mark.parametrize("workload", WORKLOADS)
def test_histograms_cover_every_cycle(workload, config_name):
    _, result = run_with_stats(workload, CONFIGS[config_name])
    occupancy = result.stats.occupancy
    cycles = result.stats.cycles
    assert occupancy.cycles == cycles
    for name in ("rob", "iq", "prf", "sq", "lq", "issued"):
        assert sum(getattr(occupancy, name)) == cycles, name
    for counts in occupancy.ready:
        assert sum(counts) == cycles


@pytest.mark.parametrize("config_name", list(CONFIGS))
@pytest.mark.parametrize("workload", WORKLOADS)
def test_issue_and_stall_totals_match_simstats(workload, config_name):
    _, result = run_with_stats(workload, CONFIGS[config_name])
    occupancy = result.stats.occupancy
    stats = result.stats
    weighted = sum(n * count for n, count in enumerate(occupancy.issued))
    assert weighted == stats.issued
    assert sum(occupancy.issued_by_class) == stats.issued
    assert sum(occupancy.fetch_stall_reasons) == stats.fetch_stall_cycles


@pytest.mark.parametrize("workload", WORKLOADS)
def test_recording_does_not_perturb_results(workload):
    """Stats-on and stats-off runs must simulate identically."""
    off = simulate_workload(workload, reno=RenoConfig.reno_default())
    on = simulate_workload(workload, reno=RenoConfig.reno_default(),
                           record_stats=True)
    assert off.cycles == on.cycles
    assert off.timing.final_registers == on.timing.final_registers
    ignore = {"occupancy"}
    for f in fields(off.stats):
        if f.name not in ignore:
            assert getattr(off.stats, f.name) == getattr(on.stats, f.name), f.name
    assert off.stats.occupancy is None
    assert on.stats.occupancy is not None


def test_occupancy_dict_roundtrip_and_summary_shape():
    _, result = run_with_stats(WORKLOADS[0], CONFIGS["RENO"])
    occupancy = result.stats.occupancy
    again = OccupancyStats.from_dict(occupancy.to_dict())
    assert again == occupancy
    summary = occupancy.summary()
    assert set(summary["structures"]) == {"rob", "iq", "prf", "sq", "lq"}
    for entry in summary["structures"].values():
        assert 0.0 <= entry["utilization"] <= 1.0
        assert entry["peak"] <= entry["capacity"]
    assert set(summary["ready"]) == set(ISSUE_CLASS_NAMES)
    assert set(summary["fetch_stalls"]) == set(STALL_REASON_NAMES)
    assert 0.0 <= summary["issue"]["utilization"] <= 1.0


def test_timeline_rows_follow_the_stride():
    _, result = run_with_stats(WORKLOADS[0], CONFIGS["BASE"], timeline_stride=5)
    assert result.timeline
    cycles = [row[0] for row in result.timeline]
    assert all(cycle % 5 == 0 for cycle in cycles)
    assert cycles == sorted(cycles)
    # Row shape: (cycle, committed, issued, rob, iq, prf, sq, lq).
    assert all(len(row) == 8 for row in result.timeline)
    # committed is monotonically non-decreasing along the timeline.
    committed = [row[1] for row in result.timeline]
    assert committed == sorted(committed)


def test_timeline_stride_implies_recording():
    """A timeline stride alone switches occupancy recording on."""
    program = get_workload(WORKLOADS[0]).build(1)
    trace = FunctionalSimulator(program, 2_000_000).run().trace
    pipeline = Pipeline(program, trace, MachineConfig.default_4wide(),
                        timeline_stride=9)
    assert pipeline.record_stats
    result = pipeline.run()
    assert result.stats.occupancy is not None
    assert result.timeline


def test_negative_timeline_stride_rejected():
    program = get_workload(WORKLOADS[0]).build(1)
    trace = FunctionalSimulator(program, 2_000_000).run().trace
    with pytest.raises(ValueError, match="timeline_stride"):
        Pipeline(program, trace, MachineConfig.default_4wide(),
                 timeline_stride=-1)


def test_timeline_ring_buffer_wraps():
    recorder = TimelineRecorder(stride=1, capacity=4)
    for cycle in range(10):
        recorder.record((cycle, 0, 0, 0, 0, 0, 0, 0))
    assert recorder.total == 10
    assert len(recorder.rows) == 4
    assert [row[0] for row in recorder.ordered()] == [6, 7, 8, 9]
    payload = recorder.to_dict()
    assert payload["total"] == 10
    assert [row[0] for row in payload["rows"]] == [6, 7, 8, 9]
    assert len(payload["columns"]) == 8


def test_ring_wrap_in_a_real_run():
    """A tiny capacity forces wrap-around mid-run; the retained tail is
    still strided, ordered and consistent."""
    program = get_workload("micro_branchy").build(1)
    trace = FunctionalSimulator(program, 2_000_000).run().trace
    pipeline = Pipeline(program, trace, MachineConfig.default_4wide(),
                        timeline_stride=2, timeline_capacity=16)
    result = pipeline.run()
    assert pipeline.timeline.total > 16
    assert len(result.timeline) == 16
    cycles = [row[0] for row in result.timeline]
    assert cycles == sorted(cycles)
    assert all(cycle % 2 == 0 for cycle in cycles)
