"""Property tests: incremental runs + snapshot/restore are cycle-exact.

The contract under test (the incremental simulation API behind
``repro.api``): slicing a simulation with ``run(max_cycles=k)``, pickling a
``snapshot()`` between slices, restoring it into a *freshly constructed*
pipeline and finishing there must be indistinguishable — stat for stat,
register for register, timing record for timing record — from one
uninterrupted ``run()``.  Seeded random programs (reusing the scheduler
equivalence generator: ALU ops, moves, folds, loads, stores, loops) cover
both the conventional and the RENO renamer, with and without timing
collection, across several slice widths including pathological ones.
"""

import pickle
from dataclasses import fields

import pytest
from test_scheduler_equivalence import random_program

from repro.core import RenoConfig, RenoRenamer
from repro.functional.simulator import FunctionalSimulator
from repro.uarch.config import MachineConfig
from repro.uarch.core import Pipeline
from repro.uarch.snapshot import PipelineSnapshot, SnapshotError

SEEDS = [11, 101, 3301]

CONFIGS = {
    "BASE": None,
    "RENO": RenoConfig.reno_default(),
}


def build_run(seed):
    program = random_program(seed, length=160).assemble()
    trace = FunctionalSimulator(program).run().trace
    return program, trace


def make_pipeline(program, trace, reno, collect_timing=False,
                  record_stats=False, timeline_stride=0):
    machine = MachineConfig.default_4wide()
    renamer = RenoRenamer(machine.num_physical_regs, reno) if reno is not None else None
    return Pipeline(program, trace, machine, renamer=renamer,
                    collect_timing=collect_timing, record_stats=record_stats,
                    timeline_stride=timeline_stride)


def stats_dict(result):
    return {f.name: getattr(result.stats, f.name) for f in fields(result.stats)}


def assert_results_identical(sliced, reference):
    assert stats_dict(sliced) == stats_dict(reference)
    assert sliced.final_registers == reference.final_registers
    assert sliced.timing_records == reference.timing_records
    assert sliced.timeline == reference.timeline
    assert sliced.finished and reference.finished


def run_sliced_with_handoff(program, trace, reno, slice_cycles,
                            collect_timing=False, record_stats=False,
                            timeline_stride=0):
    """Finish a run in slices, pickling the snapshot and rebuilding the
    pipeline from scratch between every pair of slices."""
    pipeline = make_pipeline(program, trace, reno, collect_timing,
                             record_stats, timeline_stride)
    slices = 0
    while True:
        result = pipeline.run(max_cycles=slice_cycles)
        slices += 1
        if result.finished:
            return result, slices
        snapshot = pickle.loads(pickle.dumps(pipeline.snapshot()))
        fresh = make_pipeline(program, trace, reno, collect_timing,
                              record_stats, timeline_stride)
        fresh.restore(snapshot)
        pipeline = fresh


@pytest.mark.parametrize("config_name", list(CONFIGS))
@pytest.mark.parametrize("seed", SEEDS)
def test_sliced_run_matches_uninterrupted(seed, config_name):
    program, trace = build_run(seed)
    reno = CONFIGS[config_name]
    reference = make_pipeline(program, trace, reno).run()
    # Slice widths chosen to cut mid-burst (odd, prime) and almost-whole.
    for slice_cycles in (89 + seed % 7, 1000):
        sliced, slices = run_sliced_with_handoff(program, trace, reno, slice_cycles)
        assert slices > 1 or slice_cycles == 1000
        assert_results_identical(sliced, reference)


@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_single_cycle_slices_match(config_name):
    """The pathological width: a snapshot handoff after every few cycles."""
    program, trace = build_run(SEEDS[0])
    reno = CONFIGS[config_name]
    reference = make_pipeline(program, trace, reno).run()
    # Handoff every 23 cycles over a shortened prefix of the run to keep the
    # deepcopy count bounded; exactness over long runs is covered above.
    sliced, slices = run_sliced_with_handoff(program, trace, reno, 23)
    assert slices >= 10
    assert_results_identical(sliced, reference)


@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_sliced_run_with_timing_records(config_name):
    program, trace = build_run(SEEDS[0])
    reno = CONFIGS[config_name]
    reference = make_pipeline(program, trace, reno, collect_timing=True).run()
    sliced, _ = run_sliced_with_handoff(program, trace, reno, 131,
                                        collect_timing=True)
    assert_results_identical(sliced, reference)


@pytest.mark.parametrize("config_name", list(CONFIGS))
@pytest.mark.parametrize("seed", SEEDS)
def test_sliced_run_with_occupancy_and_timeline(seed, config_name):
    """Slicing with the observability layer on is byte-identical too: the
    occupancy histograms, the serialised occupancy section and the strided
    timeline all survive pickled snapshot handoffs exactly."""
    program, trace = build_run(seed)
    reno = CONFIGS[config_name]
    reference = make_pipeline(program, trace, reno, record_stats=True,
                              timeline_stride=7).run()
    assert reference.stats.occupancy is not None
    assert reference.stats.occupancy.cycles == reference.stats.cycles
    sliced, slices = run_sliced_with_handoff(
        program, trace, reno, 97 + seed % 5,
        record_stats=True, timeline_stride=7)
    assert slices > 1
    assert_results_identical(sliced, reference)
    assert (sliced.stats.occupancy.to_dict()
            == reference.stats.occupancy.to_dict())


def test_restore_rejects_mismatched_observability_modes():
    """A snapshot only restores into a pipeline recording the same things."""
    program, trace = build_run(SEEDS[0])
    pipeline = make_pipeline(program, trace, None, record_stats=True,
                             timeline_stride=4)
    pipeline.run(max_cycles=100)
    snapshot = pickle.loads(pickle.dumps(pipeline.snapshot()))

    plain = make_pipeline(program, trace, None)
    with pytest.raises(SnapshotError, match="record_stats"):
        plain.restore(snapshot)

    other_stride = make_pipeline(program, trace, None, record_stats=True,
                                 timeline_stride=8)
    with pytest.raises(SnapshotError, match="timeline_stride"):
        other_stride.restore(snapshot)

    # And the inverse direction: a stats-off snapshot does not restore
    # into a recording pipeline.
    off = make_pipeline(program, trace, None)
    off.run(max_cycles=100)
    stats_on = make_pipeline(program, trace, None, record_stats=True)
    with pytest.raises(SnapshotError, match="record_stats"):
        stats_on.restore(off.snapshot())


def test_snapshot_is_detached_from_the_live_pipeline():
    program, trace = build_run(SEEDS[1])
    pipeline = make_pipeline(program, trace, CONFIGS["RENO"])
    pipeline.run(max_cycles=150)
    snapshot = pipeline.snapshot()
    reference = make_pipeline(program, trace, CONFIGS["RENO"])
    reference.restore(snapshot)
    # Finishing the original must not corrupt the snapshot: a second
    # restore+finish still matches.
    original = pipeline.run()
    later = make_pipeline(program, trace, CONFIGS["RENO"])
    later.restore(snapshot)
    assert stats_dict(later.run()) == stats_dict(original)
    assert stats_dict(reference.run()) == stats_dict(original)


def test_zero_budget_run_is_a_no_op():
    program, trace = build_run(SEEDS[2])
    pipeline = make_pipeline(program, trace, None)
    result = pipeline.run(max_cycles=0)
    assert not result.finished
    assert result.stats.cycles == 0
    assert result.stats.committed == 0


def test_run_rejects_negative_budget():
    program, trace = build_run(SEEDS[2])
    pipeline = make_pipeline(program, trace, None)
    with pytest.raises(ValueError, match="max_cycles"):
        pipeline.run(max_cycles=-1)


def test_run_after_completion_returns_the_same_result():
    program, trace = build_run(SEEDS[0])
    pipeline = make_pipeline(program, trace, None)
    first = pipeline.run()
    again = pipeline.run(max_cycles=50)
    assert again.finished
    assert stats_dict(again) == stats_dict(first)


def test_restore_rejects_mismatched_inputs():
    program, trace = build_run(SEEDS[0])
    pipeline = make_pipeline(program, trace, None)
    pipeline.run(max_cycles=100)
    snapshot = pipeline.snapshot()

    other_machine = Pipeline(program, trace, MachineConfig.default_6wide())
    with pytest.raises(SnapshotError, match="machine config"):
        other_machine.restore(snapshot)

    truncated = Pipeline(program, trace[:-5], MachineConfig.default_4wide())
    with pytest.raises(SnapshotError, match="trace"):
        truncated.restore(snapshot)

    timing = make_pipeline(program, trace, None, collect_timing=True)
    with pytest.raises(SnapshotError, match="collect_timing"):
        timing.restore(snapshot)


def test_checkpoint_save_load_roundtrip(tmp_path):
    program, trace = build_run(SEEDS[1])
    pipeline = make_pipeline(program, trace, CONFIGS["RENO"])
    pipeline.run(max_cycles=200)
    path = pipeline.snapshot().save(tmp_path / "run.ckpt")
    loaded = PipelineSnapshot.load(path)
    assert loaded.committed == pipeline._committed
    assert loaded.cycle == pipeline._cycle
    fresh = make_pipeline(program, trace, CONFIGS["RENO"])
    fresh.restore(loaded)
    reference = make_pipeline(program, trace, CONFIGS["RENO"]).run()
    assert stats_dict(fresh.run()) == stats_dict(reference)


def test_checkpoint_load_rejects_junk(tmp_path):
    path = tmp_path / "junk.ckpt"
    path.write_bytes(b"not a pickle")
    with pytest.raises(SnapshotError, match="cannot load"):
        PipelineSnapshot.load(path)
    pickled_other = tmp_path / "other.ckpt"
    pickled_other.write_bytes(pickle.dumps({"not": "a snapshot"}))
    with pytest.raises(SnapshotError, match="not a PipelineSnapshot"):
        PipelineSnapshot.load(pickled_other)
