"""Unit tests for the cache hierarchy."""

from repro.uarch.cache import Cache, CacheHierarchy
from repro.uarch.config import CacheConfig, MachineConfig


def small_cache(size=1024, assoc=2, block=32, latency=2):
    return Cache(CacheConfig(size, assoc, block, latency), "test")


def test_first_access_misses_then_hits():
    cache = small_cache()
    assert not cache.lookup(0x1000)
    assert cache.lookup(0x1000)
    assert cache.lookup(0x101F)          # same 32-byte block
    assert not cache.lookup(0x1020)      # next block
    assert cache.misses == 2
    assert cache.hits == 2


def test_lru_eviction_within_a_set():
    cache = small_cache(size=128, assoc=2, block=32)   # 2 sets
    num_sets = cache.num_sets
    stride = 32 * num_sets                              # same set, different tags
    a, b, c = 0, stride, 2 * stride
    cache.lookup(a)
    cache.lookup(b)
    cache.lookup(a)          # a is MRU
    cache.lookup(c)          # evicts b (LRU)
    assert cache.contains(a)
    assert cache.contains(c)
    assert not cache.contains(b)


def test_miss_rate():
    cache = small_cache()
    for address in range(0, 4096, 32):
        cache.lookup(address)
    assert cache.miss_rate == 1.0
    # Re-touching the most recently installed 1 KB should hit.
    for address in range(3072, 4096, 32):
        cache.lookup(address)
    assert 0.0 < cache.miss_rate < 1.0


def test_hierarchy_latencies_follow_levels():
    config = MachineConfig.default_4wide()
    hierarchy = CacheHierarchy(config)
    first = hierarchy.access_data_read(0x5000, now=0)
    assert not first.l1_hit
    assert first.latency >= config.l2.latency + config.memory_latency
    second = hierarchy.access_data_read(0x5000, now=first.latency)
    assert second.l1_hit
    assert second.latency == config.l1d.latency


def test_l2_hit_latency_between_l1_and_memory():
    config = MachineConfig.default_4wide()
    hierarchy = CacheHierarchy(config)
    hierarchy.access_data_read(0x9000, now=0)            # install in L1 + L2
    # Evict 0x9000 from the 2-way L1 by touching lines that map to the same
    # L1 set (stride = one L1 way) but different L2 sets.
    l1_way_bytes = config.l1d.size_bytes // config.l1d.associativity
    for index in range(1, 5):
        hierarchy.access_data_read(0x9000 + index * l1_way_bytes, now=index)
    result = hierarchy.access_data_read(0x9000, now=10_000)
    assert result.l2_hit
    assert config.l1d.latency < result.latency < config.memory_latency


def test_mshr_limits_outstanding_misses():
    config = MachineConfig.default_4wide()
    hierarchy = CacheHierarchy(config)
    stalls = 0
    for index in range(config.max_outstanding_misses + 4):
        result = hierarchy.access_data_read(0x100000 + index * 4096, now=0)
        stalls += result.mshr_stall
    assert stalls > 0


def test_instruction_and_data_caches_are_independent():
    config = MachineConfig.default_4wide()
    hierarchy = CacheHierarchy(config)
    hierarchy.access_instruction(0x2000, now=0)
    result = hierarchy.access_data_read(0x2000, now=1)
    assert not result.l1_hit          # different L1, though L2 may now hit
