"""Tests for the critical-path model and report formatting."""

from repro.analysis import analyze_critical_path, format_percent, format_table
from repro.core import RenoConfig, simulate_workload
from repro.uarch.inflight import TimingRecord


def record(seq, dispatch, issue, complete, producers=(), is_load=False, dcache=0,
           eliminated=False):
    return TimingRecord(
        seq=seq, opcode="add", fetch_cycle=dispatch, dispatch_cycle=dispatch,
        issue_cycle=issue, complete_cycle=complete, retire_cycle=complete + 1,
        is_load=is_load, is_store=False, is_branch=False, mispredicted=False,
        eliminated=eliminated, dcache_latency=dcache, latency=1,
        source_producers=tuple(producers),
    )


def test_empty_records_give_empty_breakdown():
    breakdown = analyze_critical_path([])
    assert breakdown.total == 0


def test_serial_chain_is_charged_to_alu():
    records = [record(0, 0, 1, 2)]
    for seq in range(1, 10):
        records.append(record(seq, 0, seq + 1, seq + 2, producers=(seq - 1,)))
    breakdown = analyze_critical_path(records)
    assert breakdown.alu_exec > breakdown.fetch


def test_fetch_limited_code_is_charged_to_fetch():
    # Independent instructions whose completion is limited by dispatch time.
    records = [record(seq, seq, seq + 1, seq + 2) for seq in range(20)]
    breakdown = analyze_critical_path(records)
    assert breakdown.fetch > breakdown.alu_exec


def test_load_miss_chain_is_charged_to_memory():
    records = [record(0, 0, 1, 2)]
    for seq in range(1, 6):
        records.append(record(seq, 0, seq, seq * 120, producers=(seq - 1,),
                              is_load=True, dcache=112))
    breakdown = analyze_critical_path(records)
    assert breakdown.load_mem > breakdown.load_exec
    assert breakdown.load_mem > breakdown.alu_exec


def test_fractions_sum_to_one():
    records = [record(seq, seq, seq + 1, seq + 2, producers=(seq - 1,) if seq else ())
               for seq in range(30)]
    fractions = analyze_critical_path(records).fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9


def test_critical_path_from_real_simulation():
    outcome = simulate_workload("micro_pointer_chase", reno=RenoConfig.reno_default(),
                                collect_timing=True)
    breakdown = analyze_critical_path(outcome.timing.timing_records)
    assert breakdown.total > 0
    # Pointer chasing is load-latency dominated.
    assert breakdown.load_exec + breakdown.load_mem > breakdown.alu_exec


def test_format_percent():
    assert format_percent(0.1234) == "12.3%"
    assert format_percent(0.05, signed=True) == "+5.0%"


def test_format_table_alignment_and_title():
    table = format_table(["a", "bench"], [["1", "x"], ["22", "yy"]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "bench" in lines[2]
    assert len(lines) == 6
