"""Tier-1 wrappers around the CI docs checks.

Running these locally keeps the docs job green without waiting for CI:
broken relative links, dangling anchors, syntax errors in cookbook examples
and docstring-coverage regressions all fail here first.
"""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent


def run_script(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(ROOT / "scripts" / name), *args],
        capture_output=True, text=True, cwd=ROOT,
    )


def test_docs_links_and_examples():
    result = run_script("check_docs.py")
    assert result.returncode == 0, f"{result.stdout}\n{result.stderr}"


def test_docstring_coverage_gate():
    result = run_script("check_docstrings.py", "--threshold", "90")
    assert result.returncode == 0, f"{result.stdout}\n{result.stderr}"
