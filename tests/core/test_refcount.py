"""Unit and property tests for physical register reference counting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.refcount import ReferenceCountError, ReferenceCountManager


def test_initial_state():
    manager = ReferenceCountManager(40, 32)
    assert manager.free_count() == 8
    assert manager.in_use_count() == 32
    assert manager.count(0) == 1
    assert manager.count(39) == 0


def test_allocate_share_release_cycle():
    manager = ReferenceCountManager(40, 32)
    register = manager.allocate()
    assert manager.count(register) == 1
    manager.share(register)
    manager.share(register)
    assert manager.count(register) == 3
    manager.release(register)
    manager.release(register)
    assert manager.is_live(register)
    manager.release(register)
    assert not manager.is_live(register)
    assert manager.free_count() == 8


def test_register_reused_after_full_release():
    manager = ReferenceCountManager(34, 32)
    first = manager.allocate()
    second = manager.allocate()
    with pytest.raises(ReferenceCountError):
        manager.allocate()
    manager.release(first)
    assert manager.allocate() == first
    assert manager.count(second) == 1


def test_release_underflow_raises():
    manager = ReferenceCountManager(40, 32)
    register = manager.allocate()
    manager.release(register)
    with pytest.raises(ReferenceCountError):
        manager.release(register)


def test_share_of_free_register_raises():
    manager = ReferenceCountManager(40, 32)
    with pytest.raises(ReferenceCountError):
        manager.share(39)


def test_on_free_callback_invoked():
    freed = []
    manager = ReferenceCountManager(40, 32, on_free=freed.append)
    register = manager.allocate()
    manager.share(register)
    manager.release(register)
    assert freed == []
    manager.release(register)
    assert freed == [register]


def test_more_live_than_registers_rejected():
    with pytest.raises(ReferenceCountError):
        ReferenceCountManager(16, 32)


def test_max_observed_count_tracks_sharing_degree():
    manager = ReferenceCountManager(40, 32)
    register = manager.allocate()
    for _ in range(10):
        manager.share(register)
    assert manager.max_observed_count == 11


@settings(max_examples=100, deadline=None)
@given(st.lists(st.sampled_from(["alloc", "share", "release"]), max_size=200))
def test_reference_count_conservation(operations):
    """Random allocate/share/release sequences preserve all invariants."""
    manager = ReferenceCountManager(48, 32)
    live = []               # (register, outstanding_references)
    for operation in operations:
        if operation == "alloc":
            if manager.free_count() == 0:
                continue
            register = manager.allocate()
            live.append([register, 1])
        elif operation == "share" and live:
            entry = live[0]
            manager.share(entry[0])
            entry[1] += 1
        elif operation == "release" and live:
            entry = live[-1]
            manager.release(entry[0])
            entry[1] -= 1
            if entry[1] == 0:
                live.remove(entry)
        manager.check_conservation()
    # Free + in-use always partitions the register file.
    assert manager.free_count() + manager.in_use_count() == 48
    # Every register we believe is live is live; counts match our model.
    for register, references in live:
        assert manager.count(register) == references
