"""Unit tests for the RENO renamer's elimination logic.

These drive the renamer directly with small hand-built traces (one
instruction per rename group unless stated otherwise) and inspect which
instructions it collapses and how the extended map table evolves.
"""

from repro.core import RenoConfig, RenoRenamer
from repro.functional import FunctionalSimulator
from repro.isa.assembler import Assembler
from repro.isa.registers import RegisterNames as R


def trace_of(asm: Assembler):
    return FunctionalSimulator(asm.assemble()).run().trace


def rename_trace(renamer: RenoRenamer, trace, group_size: int = 1, commit_lag: int = 16):
    """Rename a whole trace, committing each instruction ``commit_lag``
    instructions later (a stand-in for the re-order buffer window)."""
    results = []
    uncommitted = []
    pending = list(trace)
    while pending:
        group, pending = pending[:group_size], pending[group_size:]
        renamer.begin_group()
        for dyn in group:
            result = renamer.rename_next(dyn)
            assert result is not None
            results.append((dyn, result))
            uncommitted.append(result)
        renamer.end_group()
        while len(uncommitted) > commit_lag:
            renamer.commit(uncommitted.pop(0))
    for result in uncommitted:
        renamer.commit(result)
    return results


def eliminations(results):
    return [(dyn.instruction.opcode.value, result.elim_kind)
            for dyn, result in results if result.eliminated]


# ---------------------------------------------------------------------------
# RENO_ME
# ---------------------------------------------------------------------------


def test_move_is_eliminated_and_shares_the_source_register():
    asm = Assembler("me")
    asm.li(R.T0, 7)
    asm.mov(R.T1, R.T0)
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.reno_me())
    results = rename_trace(renamer, trace_of(asm))
    li_result = results[0][1]
    mov_result = results[1][1]
    assert not li_result.eliminated              # li allocates a register
    assert mov_result.eliminated
    assert mov_result.elim_kind == "move"
    assert mov_result.dest_preg == li_result.dest_preg
    assert not mov_result.allocated
    assert renamer.stats["eliminated_moves"] == 1


def test_me_only_configuration_does_not_fold_additions():
    asm = Assembler("me_only")
    asm.li(R.T0, 7)
    asm.addi(R.T1, R.T0, 4)
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.reno_me())
    results = rename_trace(renamer, trace_of(asm))
    assert eliminations(results) == []            # the li/addi both execute


# ---------------------------------------------------------------------------
# RENO_CF
# ---------------------------------------------------------------------------


def test_addi_is_folded_into_the_map_table_displacement():
    asm = Assembler("cf")
    asm.li(R.T0, 100)      # executes (source is the zero register... also foldable!)
    asm.addi(R.T1, R.T0, 4)
    asm.addi(R.T2, R.T1, 6)
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.reno_cf_me())
    results = rename_trace(renamer, trace_of(asm))
    # li t0, 100 is addi t0, zero, 100: foldable onto the zero register.
    li_result = results[0][1]
    assert li_result.eliminated and li_result.dest_disp == 100
    first_addi = results[1][1]
    second_addi = results[2][1]
    assert first_addi.eliminated and first_addi.elim_kind == "cf"
    assert first_addi.dest_disp == 104
    assert second_addi.eliminated and second_addi.dest_disp == 110
    # All three share the zero register's physical register.
    assert li_result.dest_preg == first_addi.dest_preg == second_addi.dest_preg


def test_subi_folds_a_negative_displacement():
    asm = Assembler("cf_neg")
    asm.li(R.T0, 100)
    asm.subi(R.T1, R.T0, 30)
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.reno_cf_me())
    results = rename_trace(renamer, trace_of(asm))
    assert results[1][1].dest_disp == 70


def test_consumer_of_folded_addition_gets_the_displacement():
    asm = Assembler("cf_consumer")
    asm.zeros("buf", 4)
    asm.la(R.A0, "buf")
    asm.addi(R.T0, R.A0, 8)
    asm.ld(R.T1, 0, R.T0)
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.reno_cf_me())
    results = rename_trace(renamer, trace_of(asm))
    load_dyn, load_result = next((d, r) for d, r in results if d.instruction.is_load)
    assert not load_result.eliminated
    assert load_result.sources[0].disp == 8      # fused address computation


def test_displacement_overflow_cancels_folding():
    asm = Assembler("cf_overflow")
    asm.li(R.T0, 5)
    asm.addi(R.T1, R.T0, 30000)
    asm.addi(R.T2, R.T1, 30000)   # 60000 does not fit in 16 signed bits
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.reno_cf_me())
    results = rename_trace(renamer, trace_of(asm))
    assert results[1][1].eliminated
    assert not results[2][1].eliminated
    assert renamer.stats["overflow_cancellations"] == 1


def test_narrow_displacement_field_cancels_more_often():
    asm = Assembler("cf_narrow")
    asm.li(R.T0, 5)
    asm.addi(R.T1, R.T0, 100)
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.reno_cf_me().with_displacement_bits(6))
    results = rename_trace(renamer, trace_of(asm))
    assert not results[1][1].eliminated
    assert renamer.stats["overflow_cancellations"] >= 1


def test_dependent_eliminations_blocked_within_a_group():
    asm = Assembler("cf_group")
    asm.li(R.T0, 5)
    asm.addi(R.T1, R.T0, 4)
    asm.addi(R.T2, R.T1, 6)       # depends on the addi renamed in the same group
    asm.halt()
    trace = trace_of(asm)
    renamer = RenoRenamer(64, RenoConfig.reno_cf_me())
    results = rename_trace(renamer, trace[1:3], group_size=2)   # both addis together
    assert results[0][1].eliminated
    assert not results[1][1].eliminated
    assert renamer.stats["dependent_elimination_blocks"] == 1


def test_dependent_eliminations_allowed_when_ablation_enabled():
    asm = Assembler("cf_group_ablation")
    asm.li(R.T0, 5)
    asm.addi(R.T1, R.T0, 4)
    asm.addi(R.T2, R.T1, 6)
    asm.halt()
    trace = trace_of(asm)
    config = RenoConfig(allow_dependent_eliminations=True, enable_integration=False)
    renamer = RenoRenamer(64, config)
    results = rename_trace(renamer, trace[1:3], group_size=2)
    assert results[0][1].eliminated and results[1][1].eliminated


def test_fusion_latency_reported_for_non_additive_consumer():
    asm = Assembler("cf_fusion")
    asm.li(R.T0, 5)
    asm.addi(R.T1, R.T0, 4)
    asm.sll(R.T2, R.T1, R.T0)     # shifter consumes a displaced operand
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.reno_cf_me())
    results = rename_trace(renamer, trace_of(asm))
    shift_result = results[2][1]
    assert not shift_result.eliminated
    assert shift_result.fusion_extra_latency == 1


# ---------------------------------------------------------------------------
# RENO_CSE / RENO_RA (integration)
# ---------------------------------------------------------------------------


def test_redundant_load_is_eliminated_as_cse():
    asm = Assembler("cse")
    asm.word_array("buf", [42])
    asm.la(R.A0, "buf")
    asm.ld(R.T0, 0, R.A0)
    asm.ld(R.T1, 0, R.A0)         # same address, register unchanged
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.reno_default())
    results = rename_trace(renamer, trace_of(asm))
    loads = [(d, r) for d, r in results if d.instruction.is_load]
    assert not loads[0][1].eliminated
    assert loads[1][1].eliminated
    assert loads[1][1].elim_kind == "cse"
    assert loads[1][1].needs_reexecution
    assert loads[1][1].dest_preg == loads[0][1].dest_preg


def test_store_load_pair_is_bypassed_as_ra():
    asm = Assembler("ra")
    asm.zeros("slot", 1)
    asm.la(R.A0, "slot")
    asm.li(R.T0, 77)
    asm.st(R.T0, 0, R.A0)
    asm.ld(R.T1, 0, R.A0)          # reads back what was just stored
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.reno_default())
    results = rename_trace(renamer, trace_of(asm))
    load_result = next(r for d, r in results if d.instruction.is_load)
    assert load_result.eliminated
    assert load_result.elim_kind == "ra"


def test_intervening_store_to_same_address_blocks_integration():
    asm = Assembler("cse_blocked")
    asm.word_array("buf", [42])
    asm.la(R.A0, "buf")
    asm.li(R.T2, 5)
    asm.ld(R.T0, 0, R.A0)
    asm.st(R.T2, 0, R.A0)          # changes the memory value
    asm.ld(R.T1, 0, R.A0)          # must NOT share the first load's register
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.reno_default())
    results = rename_trace(renamer, trace_of(asm))
    loads = [r for d, r in results if d.instruction.is_load]
    # The second load may be bypassed from the intervening *store* (correct),
    # but must not be integrated with the stale first load.
    if loads[1].eliminated:
        assert loads[1].elim_kind == "ra"


def test_overwritten_base_register_blocks_integration():
    asm = Assembler("cse_base_changed")
    asm.word_array("buf", [42, 43])
    asm.la(R.A0, "buf")
    asm.ld(R.T0, 0, R.A0)
    asm.add(R.A0, R.A0, R.A0)      # r_a0 now names a different physical register
    asm.ld(R.T1, 0, R.A0)
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.integration_only_loads())
    results = rename_trace(renamer, trace_of(asm))
    loads = [r for d, r in results if d.instruction.is_load]
    assert not loads[1].eliminated


def test_loads_only_policy_does_not_touch_alu_ops():
    asm = Assembler("loads_only")
    asm.li(R.T0, 3)
    asm.li(R.T1, 4)
    asm.add(R.T2, R.T0, R.T1)
    asm.add(R.T3, R.T0, R.T1)      # redundant ALU op
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.integration_only_loads())
    results = rename_trace(renamer, trace_of(asm))
    adds = [r for d, r in results if d.instruction.opcode.value == "add"]
    assert not any(r.eliminated for r in adds)
    assert renamer.stats["it_lookups"] == 0


def test_full_policy_eliminates_redundant_alu_ops():
    asm = Assembler("full_integ")
    asm.li(R.T0, 3)
    asm.li(R.T1, 4)
    asm.add(R.T2, R.T0, R.T1)
    asm.add(R.T3, R.T0, R.T1)
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.integration_only_full())
    results = rename_trace(renamer, trace_of(asm))
    adds = [r for d, r in results if d.instruction.opcode.value == "add"]
    assert not adds[0].eliminated
    assert adds[1].eliminated and adds[1].elim_kind == "cse"
    assert not adds[1].needs_reexecution


def test_reverse_addi_entry_restores_previous_mapping():
    """addi sp,-16 then addi sp,+16 shares the original register (full policy)."""
    asm = Assembler("reverse_addi")
    asm.mov(R.T0, R.SP)
    asm.subi(R.SP, R.SP, 16)
    asm.addi(R.SP, R.SP, 16)
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.integration_only_full())
    results = rename_trace(renamer, trace_of(asm))
    decrement = results[1][1]
    increment = results[2][1]
    assert not decrement.eliminated
    assert increment.eliminated
    # The increment's output maps back to the pre-decrement register.
    assert increment.dest_preg == decrement.sources[0].preg


def test_it_statistics_are_tracked():
    asm = Assembler("stats")
    asm.word_array("buf", [1, 2])
    asm.la(R.A0, "buf")
    asm.ld(R.T0, 0, R.A0)
    asm.ld(R.T1, 0, R.A0)
    asm.halt()
    renamer = RenoRenamer(64, RenoConfig.reno_default())
    rename_trace(renamer, trace_of(asm))
    assert renamer.stats["it_insertions"] >= 1
    assert renamer.stats["it_lookups"] >= 2
    assert renamer.stats["it_hits"] == 1


def test_commit_releases_shared_registers_without_underflow():
    asm = Assembler("release")
    asm.li(R.T0, 1)
    for _ in range(20):
        asm.mov(R.T1, R.T0)
        asm.mov(R.T0, R.T1)
    asm.halt()
    renamer = RenoRenamer(40, RenoConfig.reno_default())
    rename_trace(renamer, trace_of(asm))
    renamer.refcounts.check_conservation()
