"""Property-based invariant tests for the rename layer.

Random instruction sequences are pushed through the RENO renamer (map table +
reference counts + integration table) and through the full pipeline, checking
the invariants that underpin physical-register sharing:

* no physical register is ever leaked (count 0 but off the free list) or
  double-freed (count underflow / free while referenced);
* after every in-flight instruction has committed, each register's reference
  count equals the number of map-table entries naming it;
* a failed rename (no free destination register) has no side effects;
* the timing simulator's final architectural state always matches the
  functional simulator's, for every RENO configuration.

No hypothesis dependency: sequences come from seeded ``random.Random``
generators, so every case is reproducible from its seed.
"""

import random

import pytest

from repro.core import RenoConfig, RenoRenamer
from repro.core.refcount import ReferenceCountError
from repro.core.simulator import simulate
from repro.functional.simulator import FunctionalSimulator
from repro.isa.assembler import Assembler
from repro.isa.registers import NUM_LOGICAL_REGS
from repro.uarch.config import MachineConfig

#: General-purpose registers the generator may use as sources/destinations
#: (temporaries + callee-saved + argument registers; avoids sp/gp/ra/zero).
USABLE_REGS = list(range(0, 26))

SEEDS = [7, 23, 101, 481, 1105, 2821]

CONFIGS = {
    "ME": RenoConfig.reno_me(),
    "CF+ME": RenoConfig.reno_cf_me(),
    "RENO": RenoConfig.reno_default(),
    "FullInteg": RenoConfig.reno_full_integration(),
}


def random_program(seed: int, length: int = 300) -> Assembler:
    """A random straight-line kernel exercising every elimination idiom."""
    rng = random.Random(seed)
    asm = Assembler(f"random_{seed}")
    asm.word_array("data", [rng.randrange(0, 1 << 16) for _ in range(32)])
    asm.la(26, "data")                     # base pointer in ra's slot (usable)
    for reg in USABLE_REGS[:8]:
        asm.li(reg, rng.randrange(0, 1 << 12))
    for _ in range(length):
        choice = rng.random()
        rd = rng.choice(USABLE_REGS)
        rs = rng.choice(USABLE_REGS)
        if choice < 0.20:
            asm.mov(rd, rs)
        elif choice < 0.45:
            asm.addi(rd, rs, rng.randrange(0, 256))
        elif choice < 0.55:
            asm.subi(rd, rs, rng.randrange(0, 256))
        elif choice < 0.70:
            asm.add(rd, rs, rng.choice(USABLE_REGS))
        elif choice < 0.85:
            asm.ld(rd, 8 * rng.randrange(0, 32), 26)
        else:
            asm.st(rs, 8 * rng.randrange(0, 32), 26)
    asm.halt()
    return asm


def trace_for(seed: int):
    return FunctionalSimulator(random_program(seed).assemble()).run().trace


def rename_with_rob_window(renamer: RenoRenamer, trace, group_size=4, window=16):
    """Rename the whole trace, committing in order once the window fills."""
    in_flight = []
    for start in range(0, len(trace), group_size):
        renamer.begin_group()
        for dyn in trace[start:start + group_size]:
            result = renamer.rename_next(dyn)
            assert result is not None, "renamer ran out of registers unexpectedly"
            in_flight.append(result)
        renamer.end_group()
        while len(in_flight) > window:
            renamer.commit(in_flight.pop(0))
    for result in in_flight:
        renamer.commit(result)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_no_leak_or_double_free_and_counts_match_map_table(seed, config_name):
    renamer = RenoRenamer(96, CONFIGS[config_name])
    rename_with_rob_window(renamer, trace_for(seed))

    refcounts = renamer.refcounts
    # Conservation: every register is either free or positively referenced,
    # the free list and the counts agree, and nothing was double-freed.
    refcounts.check_conservation()
    assert refcounts.free_count() + refcounts.in_use_count() == 96

    # With no instructions in flight, the only references left are map-table
    # entries: each register's count must equal the number of logical
    # registers currently mapped to it.
    references = [0] * 96
    for preg, _disp in renamer.map_table.snapshot():
        references[preg] += 1
    assert references == refcounts.counts


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_failed_rename_has_no_side_effects(seed):
    # Big enough to hold the initial mappings, small enough to exhaust.
    renamer = RenoRenamer(NUM_LOGICAL_REGS + 4, RenoConfig.reno_default())
    trace = trace_for(seed)
    failed = None
    renamer.begin_group()
    for dyn in trace:
        before_free = renamer.free_register_count()
        before_counts = list(renamer.refcounts.counts)
        before_mappings = renamer.map_table.snapshot()
        result = renamer.rename_next(dyn)
        if result is None:
            failed = dyn
            # A stalled rename must leave no trace: same free registers, same
            # counts, same mappings — the pipeline will retry next cycle.
            assert renamer.free_register_count() == before_free
            assert renamer.refcounts.counts == before_counts
            assert renamer.map_table.snapshot() == before_mappings
            break
    renamer.end_group()
    assert failed is not None, "expected the tiny register file to stall renaming"


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_releasing_a_free_register_raises(seed):
    renamer = RenoRenamer(96, RenoConfig.reno_default())
    rename_with_rob_window(renamer, trace_for(seed))
    free_register = renamer.refcounts._free[0]
    with pytest.raises(ReferenceCountError):
        renamer.refcounts.release(free_register)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_architectural_state_preserved_end_to_end(seed, config_name):
    """The pipeline's verify=True check reconstructs the architectural state
    from the (shared) physical registers and map-table displacements and
    compares it against the functional simulator — the end-to-end proof that
    no RENO transformation corrupted a value."""
    program = random_program(seed).assemble()
    outcome = simulate(program, MachineConfig.default_4wide(),
                       CONFIGS[config_name], verify=True)
    assert outcome.stats.committed == outcome.functional.dynamic_count
    if config_name != "FullInteg":
        # Move/CF-capable configs always find something in these kernels.
        assert outcome.stats.total_eliminated > 0
