"""End-to-end RENO tests: full pipeline + RENO renamer on real workloads.

The central property: with any RENO configuration, the timing simulator's
architectural results must exactly match the functional simulator's.  The
``simulate`` helper enforces this (``verify=True`` raises otherwise), so
these tests simply exercise many (workload × configuration) points and then
check the paper's qualitative claims about elimination and performance.
"""

import pytest

from repro.core import RenoConfig, run_config_comparison, simulate_workload
from repro.uarch import MachineConfig

CONFIG_MATRIX = {
    "ME": RenoConfig.reno_me(),
    "CF+ME": RenoConfig.reno_cf_me(),
    "RENO": RenoConfig.reno_default(),
    "RENO+FullInteg": RenoConfig.reno_full_integration(),
    "FullInteg": RenoConfig.integration_only_full(),
    "LoadsInteg": RenoConfig.integration_only_loads(),
}

MICRO_KERNELS = [
    "micro_sum", "micro_moves", "micro_addi_chain", "micro_redundant_loads",
    "micro_call_spill", "micro_store_load", "micro_branchy",
]


# ---------------------------------------------------------------------------
# Architectural equivalence under every configuration
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", MICRO_KERNELS)
@pytest.mark.parametrize("label", list(CONFIG_MATRIX))
def test_reno_preserves_architectural_state_micro(name, label):
    outcome = simulate_workload(name, reno=CONFIG_MATRIX[label])
    assert outcome.stats.committed == outcome.functional.dynamic_count


@pytest.mark.parametrize("name", ["gzip_like", "vortex_like", "parser_like",
                                  "adpcm_decode_like", "gsm_decode_like", "jpeg_encode_like"])
def test_reno_preserves_architectural_state_suite(name):
    outcome = simulate_workload(name, reno=RenoConfig.reno_default())
    assert outcome.stats.committed == outcome.functional.dynamic_count


def test_reno_preserves_state_on_six_wide_machine():
    outcome = simulate_workload("gzip_like", machine=MachineConfig.default_6wide(),
                                reno=RenoConfig.reno_default())
    assert outcome.stats.total_eliminated > 0


def test_reno_preserves_state_with_small_register_file():
    machine = MachineConfig.default_4wide().with_registers(96)
    outcome = simulate_workload("vortex_like", machine=machine,
                                reno=RenoConfig.reno_default())
    assert outcome.stats.committed == outcome.functional.dynamic_count


def test_reno_preserves_state_with_two_cycle_scheduler():
    machine = MachineConfig.default_4wide().with_scheduler_latency(2)
    outcome = simulate_workload("gsm_decode_like", machine=machine,
                                reno=RenoConfig.reno_default())
    assert outcome.stats.committed == outcome.functional.dynamic_count


# ---------------------------------------------------------------------------
# Qualitative claims from the paper
# ---------------------------------------------------------------------------


def test_moves_are_eliminated_by_me():
    outcome = simulate_workload("micro_moves", reno=RenoConfig.reno_me())
    stats = outcome.stats
    assert stats.eliminated_moves > 0
    assert stats.eliminated_folds == 0
    assert stats.eliminated_cse == stats.eliminated_ra == 0


def test_cf_folds_register_immediate_additions():
    outcome = simulate_workload("micro_addi_chain", reno=RenoConfig.reno_cf_me())
    assert outcome.stats.eliminated_folds > 0
    assert outcome.stats.fused_operations > 0


def test_integration_eliminates_redundant_loads():
    outcome = simulate_workload("micro_redundant_loads", reno=RenoConfig.reno_default())
    assert outcome.stats.eliminated_cse > 0
    assert outcome.stats.reexecuted_loads == outcome.stats.eliminated_cse + outcome.stats.eliminated_ra


def test_memory_bypassing_eliminates_stack_reloads():
    outcome = simulate_workload("micro_call_spill", reno=RenoConfig.reno_default())
    assert outcome.stats.eliminated_ra > 0


def test_eliminated_instructions_do_not_allocate_registers():
    base = simulate_workload("gzip_like")
    reno = simulate_workload("gzip_like", reno=RenoConfig.reno_default())
    assert reno.stats.pregs_allocated < base.stats.pregs_allocated
    assert reno.stats.pregs_allocated + reno.stats.total_eliminated == base.stats.pregs_allocated


def test_eliminated_instructions_do_not_issue():
    base = simulate_workload("gzip_like")
    reno = simulate_workload("gzip_like", reno=RenoConfig.reno_default())
    assert reno.stats.issued < base.stats.issued
    assert reno.stats.committed == base.stats.committed


def test_reno_never_slows_down_micro_kernels_catastrophically():
    for name in MICRO_KERNELS:
        outcomes = run_config_comparison(name, {"BASE": None, "RENO": RenoConfig.reno_default()})
        assert outcomes["RENO"].cycles <= outcomes["BASE"].cycles * 1.25, name


def test_reno_speeds_up_foldable_streaming_code():
    outcomes = run_config_comparison("gzip_like", {"BASE": None, "RENO": RenoConfig.reno_default()})
    assert outcomes["RENO"].cycles < outcomes["BASE"].cycles


def test_elimination_rate_grows_with_optimization_set():
    outcomes = run_config_comparison(
        "vortex_like",
        {"ME": RenoConfig.reno_me(), "CF+ME": RenoConfig.reno_cf_me(),
         "RENO": RenoConfig.reno_default()},
    )
    me = outcomes["ME"].stats.elimination_rate
    cf = outcomes["CF+ME"].stats.elimination_rate
    reno = outcomes["RENO"].stats.elimination_rate
    assert me <= cf <= reno
    assert reno > 0.2


def test_default_reno_uses_fewer_it_lookups_than_full_integration():
    """The §4.4 division of labor: loads-only IT needs far less bandwidth."""
    outcomes = run_config_comparison(
        "vortex_like",
        {"RENO": RenoConfig.reno_default(),
         "RENO+FullInteg": RenoConfig.reno_full_integration()},
    )
    default_bandwidth = (outcomes["RENO"].stats.it_lookups
                         + outcomes["RENO"].stats.it_insertions)
    full_bandwidth = (outcomes["RENO+FullInteg"].stats.it_lookups
                      + outcomes["RENO+FullInteg"].stats.it_insertions)
    assert default_bandwidth < 0.75 * full_bandwidth


def test_reno_compensates_for_reduced_register_file():
    """Figure 11 (top): RENO recovers most of the small-register-file loss."""
    workload = "gsm_encode_like"
    base_big = simulate_workload(workload, machine=MachineConfig.default_4wide())
    base_small = simulate_workload(
        workload, machine=MachineConfig.default_4wide().with_registers(96))
    reno_small = simulate_workload(
        workload, machine=MachineConfig.default_4wide().with_registers(96),
        reno=RenoConfig.reno_cf_me())
    assert base_small.cycles >= base_big.cycles
    assert reno_small.cycles < base_small.cycles
    assert reno_small.stats.max_pregs_in_use <= 96


def test_reno_compensates_for_reduced_issue_width():
    """Figure 11 (bottom): RENO recovers issue-width loss on ALU-bound code."""
    workload = "gsm_encode_like"
    machine_narrow = MachineConfig.default_4wide().with_issue(2, 3)
    base_narrow = simulate_workload(workload, machine=machine_narrow)
    reno_narrow = simulate_workload(workload, machine=machine_narrow,
                                    reno=RenoConfig.reno_cf_me())
    assert reno_narrow.cycles < base_narrow.cycles


def test_reno_helps_with_two_cycle_scheduler():
    """Figure 12: folding collapses single-cycle ops the slow scheduler hurts."""
    workload = "gsm_encode_like"
    machine_slow = MachineConfig.default_4wide().with_scheduler_latency(2)
    base_slow = simulate_workload(workload, machine=machine_slow)
    reno_slow = simulate_workload(workload, machine=machine_slow,
                                  reno=RenoConfig.reno_cf_me())
    assert reno_slow.cycles < base_slow.cycles


def test_fusion_penalty_sensitivity_costs_some_performance():
    fast = simulate_workload("gsm_encode_like", reno=RenoConfig.reno_cf_me())
    slow = simulate_workload("gsm_encode_like",
                             reno=RenoConfig.reno_cf_me().with_slow_fusion())
    assert slow.cycles >= fast.cycles
    assert slow.stats.fusion_penalty_cycles > 0


def test_integration_value_mismatches_counted_not_fatal():
    outcome = simulate_workload("vortex_like", reno=RenoConfig.reno_full_integration())
    assert outcome.stats.integration_value_mismatches >= 0
