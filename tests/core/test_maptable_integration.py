"""Unit tests for the extended map table, integration table and fusion model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import RenoConfig
from repro.core.fusion import fusion_extra_latency
from repro.core.integration import IntegrationEntry, IntegrationTable
from repro.core.maptable import ExtendedMapTable, Mapping
from repro.isa.opcodes import Opcode


# ---------------------------------------------------------------------------
# Extended map table
# ---------------------------------------------------------------------------


def test_map_table_initial_identity_mapping():
    table = ExtendedMapTable()
    for logical in range(32):
        assert table.get(logical) == Mapping(logical, 0)


def test_map_table_set_returns_previous():
    table = ExtendedMapTable()
    previous = table.set(3, 40, 8)
    assert previous == Mapping(3, 0)
    assert table.get(3) == Mapping(40, 8)
    assert table.snapshot()[3] == (40, 8)


def test_map_table_displacement_accumulation():
    mapping = Mapping(10, 4)
    assert mapping.displaced_by(12) == Mapping(10, 16)
    assert mapping.displaced_by(-4) == Mapping(10, 0)


def test_map_table_bookkeeping_helpers():
    table = ExtendedMapTable()
    table.set(1, 40, 8)
    table.set(2, 40, 0)
    assert 40 in table.pregs_in_use()
    assert table.nonzero_displacements() == 1


# ---------------------------------------------------------------------------
# Integration table
# ---------------------------------------------------------------------------


def entry(key, out_preg=50, origin="load", value=7, out_disp=0):
    return IntegrationEntry(key=key, out_preg=out_preg, out_disp=out_disp,
                            origin=origin, value=value)


def test_it_miss_then_hit():
    table = IntegrationTable(entries=16, associativity=2)
    key = IntegrationTable.make_key("ld", 8, ((1, 0),))
    assert table.lookup(key) is None
    table.insert(entry(key))
    hit = table.lookup(key)
    assert hit is not None and hit.out_preg == 50
    assert table.hits == 1 and table.lookups == 2


def test_it_distinguishes_different_inputs():
    table = IntegrationTable(entries=16, associativity=2)
    table.insert(entry(IntegrationTable.make_key("ld", 8, ((1, 0),))))
    assert table.lookup(IntegrationTable.make_key("ld", 8, ((2, 0),))) is None
    assert table.lookup(IntegrationTable.make_key("ld", 16, ((1, 0),))) is None
    assert table.lookup(IntegrationTable.make_key("ld", 8, ((1, 4),))) is None


def test_it_reinsert_same_key_replaces():
    table = IntegrationTable(entries=16, associativity=2)
    key = IntegrationTable.make_key("add", 0, ((1, 0), (2, 0)))
    table.insert(entry(key, out_preg=50))
    table.insert(entry(key, out_preg=60))
    assert table.lookup(key).out_preg == 60
    assert len(table) == 1


def test_it_lru_eviction_within_set():
    table = IntegrationTable(entries=2, associativity=2)   # a single set
    keys = [IntegrationTable.make_key("ld", offset, ((1, 0),)) for offset in (0, 8, 16)]
    table.insert(entry(keys[0]))
    table.insert(entry(keys[1]))
    table.lookup(keys[0])               # refresh key 0
    table.insert(entry(keys[2]))        # evicts key 1
    assert table.lookup(keys[0]) is not None
    assert table.lookup(keys[1]) is None
    assert table.lookup(keys[2]) is not None


def test_it_invalidation_by_output_register():
    table = IntegrationTable(entries=16, associativity=2)
    key = IntegrationTable.make_key("ld", 8, ((1, 0),))
    table.insert(entry(key, out_preg=50))
    assert table.invalidate_preg(50) == 1
    assert table.lookup(key) is None


def test_it_invalidation_by_input_register():
    table = IntegrationTable(entries=16, associativity=2)
    key = IntegrationTable.make_key("ld", 8, ((7, 0),))
    table.insert(entry(key, out_preg=50))
    assert table.invalidate_preg(7) == 1
    assert table.lookup(key) is None


def test_it_invalidation_of_unknown_register_is_noop():
    table = IntegrationTable(entries=16, associativity=2)
    assert table.invalidate_preg(123) == 0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 3)), max_size=40))
def test_it_never_exceeds_capacity(operations):
    table = IntegrationTable(entries=8, associativity=2)
    for preg, offset in operations:
        key = IntegrationTable.make_key("ld", offset * 8, ((preg, 0),))
        table.insert(entry(key, out_preg=40 + preg))
    assert len(table) <= 8
    for ways in table._sets:  # noqa: SLF001 - structural check
        assert len(ways) <= 2


# ---------------------------------------------------------------------------
# Fusion latency model
# ---------------------------------------------------------------------------


def test_fusion_free_for_address_generation_and_additions():
    config = RenoConfig()
    assert fusion_extra_latency(Opcode.LD, [8], config) == 0
    assert fusion_extra_latency(Opcode.ST, [8, 0], config) == 0
    assert fusion_extra_latency(Opcode.ADD, [8, 0], config) == 0
    assert fusion_extra_latency(Opcode.BEQ, [4], config) == 0
    assert fusion_extra_latency(Opcode.CMPLT, [4, 0], config) == 0


def test_fusion_penalty_for_non_additive_units():
    config = RenoConfig()
    assert fusion_extra_latency(Opcode.SLL, [8, 0], config) == 1
    assert fusion_extra_latency(Opcode.MUL, [8, 0], config) == 1
    assert fusion_extra_latency(Opcode.AND, [8, 0], config) == 1
    assert fusion_extra_latency(Opcode.XORI, [8], config) == 1


def test_fusion_penalty_for_double_displacement():
    config = RenoConfig()
    assert fusion_extra_latency(Opcode.ADD, [8, 4], config) == 1


def test_fusion_no_penalty_without_displacements():
    config = RenoConfig()
    for opcode in (Opcode.MUL, Opcode.SLL, Opcode.AND, Opcode.ADD, Opcode.LD):
        assert fusion_extra_latency(opcode, [0, 0], config) == 0


def test_fusion_sensitivity_knob_charges_every_fused_op():
    config = RenoConfig().with_slow_fusion()
    assert fusion_extra_latency(Opcode.LD, [8], config) == 1
    assert fusion_extra_latency(Opcode.ADD, [8, 0], config) == 1


# ---------------------------------------------------------------------------
# RenoConfig presets
# ---------------------------------------------------------------------------


def test_reno_config_presets_are_consistent():
    assert RenoConfig.reno_me().enable_move_elimination
    assert not RenoConfig.reno_me().enable_constant_folding
    assert RenoConfig.reno_cf_me().enable_constant_folding
    assert not RenoConfig.reno_cf_me().enable_integration
    assert RenoConfig.reno_default().integration_policy == "loads_only"
    assert RenoConfig.reno_full_integration().integration_policy == "full"
    assert not RenoConfig.integration_only_full().enable_constant_folding
    assert RenoConfig.integration_only_loads().integration_policy == "loads_only"


def test_reno_config_validation():
    import pytest

    with pytest.raises(ValueError):
        RenoConfig(integration_policy="everything").validate()
    with pytest.raises(ValueError):
        RenoConfig(it_entries=10, it_associativity=4).validate()
    RenoConfig().with_displacement_bits(8).validate()
    with pytest.raises(ValueError):
        RenoConfig().with_displacement_bits(2).validate()
