"""Tests for ``repro serve``: the HTTP front-end and its CLI clients.

An in-process :class:`~repro.api.service.ReproServer` (ephemeral port,
driven from a background thread) covers the endpoint table: health,
registry listing, submit → poll → report, long-polling, warm-cache
resubmission (identical JSON, all cells cached), concurrent-submit
coalescing, cancellation and the error paths.  One subprocess test boots
the real ``python -m repro serve`` and drives it with the ``submit`` /
``status`` CLI subcommands end to end.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import Session, make_server
from repro.harness.experiments import ExperimentReport

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SMALL = ["micro_addi_chain"]

REQUEST = {"experiment": "fig8", "suite": "micro", "workloads": SMALL,
           "scale": 1, "params": {}}


@pytest.fixture()
def server(tmp_path):
    """An in-process service on an ephemeral port, torn down after the test."""
    instance = make_server(port=0, session=Session(jobs=1,
                                                   cache=tmp_path / "cache"))
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    host, port = instance.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        instance.shutdown()
        instance.server_close()
        instance.session.close(wait=False)
        thread.join(timeout=10)


def call(base, path, payload=None, timeout=60.0):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode() if payload is not None else None,
        headers={"Content-Type": "application/json"},
        method="POST" if payload is not None else "GET")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def call_error(base, path, payload=None):
    try:
        call(base, path, payload)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())
    raise AssertionError(f"{path} unexpectedly succeeded")


def test_healthz_and_registry(server):
    code, body = call(server, "/healthz")
    assert (code, body["ok"]) == (200, True)
    code, body = call(server, "/experiments")
    names = [entry["name"] for entry in body["experiments"]]
    assert code == 200 and "fig8" in names and "scale_sweep" in names


def test_submit_poll_and_cached_resubmit(server):
    code, submitted = call(server, "/experiments", REQUEST)
    assert code == 202 and submitted["job_id"]
    assert submitted["coalesced"] is False

    code, status = call(server, f"/jobs/{submitted['job_id']}?wait=60")
    assert code == 200
    assert status["state"] == "succeeded"
    assert status["cells_done"] == status["cells_total"] == 4
    assert status["cells_cached"] == 0           # cold run
    report = ExperimentReport.from_dict(status["report"])
    assert report.rows and report.experiment == "fig8"

    # Identical resubmission: a new job, every cell a cache hit, and the
    # report JSON byte-identical to the cold run's.
    code, resubmitted = call(server, "/experiments", REQUEST)
    assert code == 202 and resubmitted["job_id"] != submitted["job_id"]
    _, warm = call(server, f"/jobs/{resubmitted['job_id']}?wait=60")
    assert warm["state"] == "succeeded"
    assert warm["cells_cached"] == warm["cells_total"] == 4
    assert json.dumps(warm["report"], sort_keys=True) == \
        json.dumps(status["report"], sort_keys=True)


def test_concurrent_identical_submissions_coalesce(server):
    # Two rapid-fire submissions of a fresh request: the second must land on
    # the first job (content-addressed in-flight coalescing).
    request = dict(REQUEST, workloads=["micro_addi_chain", "micro_call_spill"])
    _, first = call(server, "/experiments", request)
    _, second = call(server, "/experiments", request)
    if second["job_id"] == first["job_id"]:
        assert second["coalesced"] is True
    else:
        # The first job can finish before the second arrives on a fast
        # machine; then the cache must have absorbed the repeat instead.
        _, warm = call(server, f"/jobs/{second['job_id']}?wait=60")
        assert warm["cells_cached"] == warm["cells_total"]
    _, done = call(server, f"/jobs/{first['job_id']}?wait=60")
    assert done["state"] == "succeeded"


def test_cancel_endpoint(server):
    _, submitted = call(server, "/experiments",
                        dict(REQUEST, workloads=["micro_addi_chain"],
                             scale=3))
    code, cancelled = call(server, f"/jobs/{submitted['job_id']}/cancel",
                           payload={})
    assert code == 200 and cancelled["job_id"] == submitted["job_id"]
    _, status = call(server, f"/jobs/{submitted['job_id']}?wait=60")
    assert status["state"] in ("cancelled", "succeeded")


def test_error_paths(server):
    code, body = call_error(server, "/jobs/nope")
    assert code == 404 and "unknown job" in body["error"]
    code, body = call_error(server, "/nope")
    assert code == 404
    code, body = call_error(server, "/experiments",
                            {"experiment": "not_registered"})
    assert code == 404 and "not_registered" in body["error"]
    code, body = call_error(server, "/experiments", {"experiment": ""})
    assert code == 400
    code, body = call_error(server, "/experiments",
                            {"experiment": "fig8", "schema_version": 99})
    assert code == 400 and "wire schema" in body["error"]


def test_serve_smoke_subprocess(tmp_path):
    """Boot the real `python -m repro serve` and drive it with the CLI."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--jobs", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env, text=True)
    try:
        line = server.stdout.readline()
        assert "listening on " in line, line
        base = line.rsplit(" ", 1)[-1].strip()

        def cli(*args, check=True):
            result = subprocess.run(
                [sys.executable, "-m", "repro", *args, "--server", base],
                capture_output=True, text=True, env=env, timeout=300)
            if check:
                assert result.returncode == 0, result.stderr
            return result

        submitted = cli("submit", "fig8", "--suite", "micro",
                        "--workloads", "micro_addi_chain", "--wait",
                        "--json", "-")
        report = ExperimentReport.from_json(
            submitted.stdout[submitted.stdout.index("{"):])
        assert report.experiment == "fig8" and report.rows

        job_id = cli("submit", "fig8", "--suite", "micro",
                     "--workloads", "micro_addi_chain").stdout.strip()
        status = cli("status", job_id, "--wait", "60", "--json", "-")
        payload = json.loads(status.stdout[status.stdout.index("{"):])
        assert payload["state"] == "succeeded"
        assert payload["cells_cached"] == payload["cells_total"]
        warm = ExperimentReport.from_dict(payload["report"])
        assert warm.to_dict() == report.to_dict()
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            output, _ = server.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            output, _ = server.communicate()
    assert "shut down cleanly" in output


def test_wait_parameter_validation(server):
    """Malformed ?wait= answers 400; negatives and oversized values clamp."""
    _, submitted = call(server, "/experiments", REQUEST)
    job_id = submitted["job_id"]
    for bad in ("abc", "", "nan", "1.5x"):
        code, body = call_error(server, f"/jobs/{job_id}?wait={bad}")
        assert code == 400, bad
        assert "wait" in body["error"]
    # Negative waits clamp to zero (an immediate status read).
    code, status = call(server, f"/jobs/{job_id}?wait=-1")
    assert code == 200 and status["job_id"] == job_id
    # Oversized waits clamp to the server maximum instead of erroring; the
    # job finishes well inside it, so this returns promptly.
    code, status = call(server, f"/jobs/{job_id}?wait=99999")
    assert code == 200 and status["state"] == "succeeded"


def test_job_routes_unquote_the_id_segment(server):
    """URL-encoded job ids resolve to the same job on GET and cancel."""
    _, submitted = call(server, "/experiments", REQUEST)
    job_id = submitted["job_id"]
    encoded = job_id.replace("-", "%2D")
    assert encoded != job_id
    code, status = call(server, f"/jobs/{encoded}?wait=60")
    assert code == 200 and status["job_id"] == job_id
    code, cancelled = call(server, f"/jobs/{encoded}/cancel", payload={})
    assert code == 200 and cancelled["job_id"] == job_id
    # An unknown encoded id still 404s with the decoded name.
    code, body = call_error(server, "/jobs/no%20such%20job")
    assert code == 404 and "no such job" in body["error"]


def test_submit_survives_bare_keyerror(server, monkeypatch):
    """A bare KeyError() from the session must surface as a 404, not crash
    the handler (str(error.args[0]) used to raise IndexError)."""
    from repro.api.session import Session as SessionClass

    def raise_bare(self, request, on_progress=None):
        raise KeyError()

    monkeypatch.setattr(SessionClass, "submit", raise_bare)
    code, body = call_error(server, "/experiments", REQUEST)
    assert code == 404
    assert isinstance(body["error"], str)


def test_job_status_carries_occupancy_for_recording_experiments(server):
    request = dict(REQUEST, experiment="bottleneck")
    _, submitted = call(server, "/experiments", request)
    _, status = call(server, f"/jobs/{submitted['job_id']}?wait=60")
    assert status["state"] == "succeeded"
    assert status["occupancy"]
    cell = status["occupancy"]["micro_addi_chain/4wide/RENO"]
    assert 0.0 <= cell["structures"]["rob"]["utilization"] <= 1.0
    assert 0.0 <= cell["issue"]["utilization"] <= 1.0
    # The finished report embeds the same section.
    assert status["report"]["occupancy"]
    assert set(status["report"]["occupancy"]) == set(status["occupancy"])
    # Non-recording experiments keep the field null.
    _, plain = call(server, "/experiments", REQUEST)
    _, plain_status = call(server, f"/jobs/{plain['job_id']}?wait=60")
    assert plain_status["state"] == "succeeded"
    assert plain_status["occupancy"] is None
