"""Tests for the ``repro.api`` Session/Job facade and wire schema.

Covers: request validation + content-addressed digests, submit/result/
status lifecycle, per-cell progress counters (cold vs warm cache),
coalescing of identical concurrent requests, cancellation, failure
propagation, the thin-client equivalence (``run_experiment`` and the
``figure*`` wrappers route through the default session and stay
byte-identical), and the report schema versioning.
"""

import threading

import pytest

from repro.api import (
    ExperimentRequest,
    JobFailed,
    JobState,
    SchemaError,
    Session,
)
from repro.api.schema import JobStatus
from repro.harness import figure8_elimination_and_speedup, run_experiment
from repro.harness.experiments import ExperimentReport

SMALL = ["micro_addi_chain", "micro_call_spill"]


def small_request(workloads=None):
    return ExperimentRequest("fig8", suite="micro",
                             workloads=workloads or SMALL[:1])


# ---------------------------------------------------------------------------
# Wire schema
# ---------------------------------------------------------------------------


def test_request_roundtrip_and_digest_stability():
    request = ExperimentRequest("fig11_regs", suite="micro", workloads=SMALL,
                                scale=2, params={"register_sizes": [96, 160]})
    clone = ExperimentRequest.from_dict(request.to_dict())
    assert clone == request
    assert clone.digest() == request.digest()
    # Tuples and lists digest identically (in-process vs wire callers).
    tupled = ExperimentRequest("fig11_regs", suite="micro", workloads=SMALL,
                               scale=2, params={"register_sizes": (96, 160)})
    assert tupled.digest() == request.digest()
    # Any field change moves the digest.
    assert small_request().digest() != request.digest()


@pytest.mark.parametrize("payload", [
    {"experiment": ""},
    {"experiment": "fig8", "scale": 0},
    {"experiment": "fig8", "scale": "2"},
    {"experiment": "fig8", "workloads": "micro_addi_chain"},
    {"experiment": "fig8", "params": []},
    {"experiment": "fig8", "schema_version": 999},
])
def test_malformed_requests_are_rejected(payload):
    with pytest.raises(SchemaError):
        ExperimentRequest.from_dict(payload)


def test_job_status_roundtrip():
    status = JobStatus(job_id="job-0001", state=JobState.RUNNING,
                       experiment="fig8", request=small_request().to_dict(),
                       cells_done=2, cells_total=4, cells_cached=1)
    assert JobStatus.from_dict(status.to_dict()) == status


def test_report_schema_version_is_stamped_and_checked():
    report = figure8_elimination_and_speedup("micro", workloads=SMALL[:1],
                                             jobs=1, cache=False)
    payload = report.to_dict()
    assert payload["schema_version"] == 2
    assert ExperimentReport.from_dict(payload) == report
    # Artifacts that predate versioning read as version 1 (all other
    # fields still round-trip).
    legacy = dict(payload)
    del legacy["schema_version"]
    parsed = ExperimentReport.from_dict(legacy)
    assert parsed.schema_version == 1
    assert parsed.rows == report.rows
    assert parsed.data == report.data
    # Newer-than-us artifacts fail loudly.
    payload["schema_version"] = 99
    with pytest.raises(ValueError, match="schema_version 99"):
        ExperimentReport.from_dict(payload)


# ---------------------------------------------------------------------------
# Session lifecycle
# ---------------------------------------------------------------------------


def test_submit_result_and_progress(tmp_path):
    seen = []
    with Session(jobs=1, cache=tmp_path / "cache") as session:
        job = session.submit(small_request(),
                             on_progress=lambda j, key, cached: seen.append((key, cached)))
        report = job.result(timeout=120)
        status = job.status()
    assert status.state == JobState.SUCCEEDED
    assert status.cells_total == 4          # 1 workload x 2 machines x 2 renos
    assert status.cells_done == status.cells_total == len(seen)
    assert status.cells_cached == 0         # cold cache
    assert not any(cached for _, cached in seen)
    assert report.rows
    assert status.report == report.to_dict()


def test_warm_resubmit_is_fully_cached(tmp_path):
    with Session(jobs=1, cache=tmp_path / "cache") as session:
        cold = session.submit(small_request()).result(timeout=120)
        warm_job = session.submit(small_request())
        warm = warm_job.result(timeout=120)
        status = warm_job.status()
    assert warm.rows == cold.rows
    assert warm.data == cold.data
    assert status.cells_cached == status.cells_done == status.cells_total


def test_sync_run_matches_async_submit(tmp_path):
    with Session(jobs=1, cache=tmp_path / "cache") as session:
        sync = session.run(small_request())
        asynch = session.submit(small_request()).result(timeout=120)
    assert sync.to_dict() == asynch.to_dict()


def test_identical_concurrent_requests_coalesce(tmp_path):
    release = threading.Event()
    started = threading.Event()

    def slow_progress(job, key, cached):
        started.set()
        release.wait(timeout=60)

    with Session(jobs=1, cache=tmp_path / "cache") as session:
        first = session.submit(
            ExperimentRequest("fig8", suite="micro", workloads=SMALL),
            on_progress=slow_progress)
        started.wait(timeout=60)
        second = session.submit(
            ExperimentRequest("fig8", suite="micro", workloads=SMALL))
        release.set()
        assert second is first
        assert first.submissions == 2
        assert first.result(timeout=120).rows
    # A *different* request never coalesces.
    with Session(jobs=1, cache=tmp_path / "cache") as session:
        job_a = session.submit(small_request())
        job_b = session.submit(ExperimentRequest("mix", suite="micro",
                                                 workloads=SMALL[:1]))
        assert job_a is not job_b
        job_a.result(timeout=120)
        job_b.result(timeout=120)


def test_unknown_experiment_is_rejected_before_job_creation(tmp_path):
    with Session(cache=tmp_path / "cache") as session:
        with pytest.raises(KeyError, match="no_such_experiment"):
            session.submit(ExperimentRequest("no_such_experiment"))
        assert session.jobs() == []


def test_failed_job_propagates_the_error(tmp_path):
    with Session(jobs=1, cache=tmp_path / "cache") as session:
        job = session.submit(ExperimentRequest("fig8", suite="micro",
                                               workloads=["no_such_workload"]))
        with pytest.raises(JobFailed, match="no_such_workload"):
            job.result(timeout=120)
        status = job.status()
    assert status.state == JobState.FAILED
    assert "no_such_workload" in status.error
    assert status.report is None


def test_cancel_before_start(tmp_path):
    with Session(jobs=1, cache=tmp_path / "cache", workers=1) as session:
        blocker = threading.Event()
        hold = session.submit(small_request(),
                              on_progress=lambda *a: blocker.wait(timeout=60))
        # The single worker is busy; the next job is still pending.
        victim = session.submit(ExperimentRequest("fig8", suite="micro",
                                                  workloads=SMALL))
        assert victim.cancel()
        blocker.set()
        hold.result(timeout=120)
        victim.wait(timeout=120)
        assert victim.status().state == JobState.CANCELLED
        assert not victim.cancel()          # already terminal


def test_session_rejects_bad_submissions(tmp_path):
    with Session(cache=tmp_path / "cache") as session:
        with pytest.raises(TypeError, match="ExperimentRequest"):
            session.submit(42)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(small_request())


# ---------------------------------------------------------------------------
# Thin clients
# ---------------------------------------------------------------------------


def test_legacy_entry_points_route_through_the_session(tmp_path):
    with Session(jobs=1, cache=tmp_path / "cache") as session:
        facade = session.run(small_request())
    legacy = run_experiment("fig8", suite="micro", workloads=SMALL[:1],
                            jobs=1, cache=False)
    wrapper = figure8_elimination_and_speedup("micro", workloads=SMALL[:1],
                                              jobs=1, cache=False)
    assert legacy.rows == facade.rows == wrapper.rows
    assert legacy.data == facade.data == wrapper.data
    assert legacy.to_dict() == wrapper.to_dict()


def test_session_estimates_grid_totals():
    session = Session()
    try:
        from repro.harness.spec import get_experiment

        entry = get_experiment("fig8")
        total = session._estimate_cells(entry, small_request())
        assert total == 4                  # 1 workload x 2 machines x 2 renos
        mix = session._estimate_cells(get_experiment("mix"),
                                      ExperimentRequest("mix", suite="micro"))
        assert mix is None                 # custom-runner shape
    finally:
        session.close()


def test_sync_run_survives_a_cancelled_coalesced_job(tmp_path):
    """run() reuses an identical in-flight job, but another client's
    cancel() must not poison the synchronous caller — it falls back to
    executing the request itself."""
    import threading

    release = threading.Event()
    started = threading.Event()

    def stall(job, key, cached):
        started.set()
        release.wait(timeout=60)

    with Session(jobs=1, cache=tmp_path / "cache") as session:
        request = ExperimentRequest("fig8", suite="micro", workloads=SMALL)
        job = session.submit(request, on_progress=stall)
        started.wait(timeout=60)
        job.cancel()
        release.set()
        report = session.run(request)       # must not raise JobCancelled
        assert report.rows
        job.wait(timeout=120)


# ---------------------------------------------------------------------------
# Job retention and live occupancy
# ---------------------------------------------------------------------------


def test_terminal_jobs_are_evicted_beyond_the_cap(tmp_path):
    """Many sequential jobs must not grow the job table without bound."""
    with Session(jobs=1, cache=tmp_path / "cache", max_retained_jobs=5,
                 job_ttl_s=None) as session:
        job_ids = []
        for index in range(12):
            # Distinct digests: each request is a different workload subset.
            request = ExperimentRequest(
                "mix", suite="micro", workloads=[SMALL[index % 2]],
                scale=1 + index // 2)
            job = session.submit(request)
            job_ids.append(job.job_id)
            assert job.result(timeout=120) is not None
        assert len(session.jobs()) <= 5
        # The most recent job is still queryable; the oldest are gone.
        assert session.job(job_ids[-1]) is not None
        assert session.job(job_ids[0]) is None


def test_job_ttl_sweeps_expired_terminal_jobs(tmp_path):
    with Session(jobs=1, cache=tmp_path / "cache",
                 job_ttl_s=0.05) as session:
        first = session.submit(small_request())
        assert first.result(timeout=120) is not None
        import time

        time.sleep(0.1)
        # The next submission sweeps the expired job.
        second = session.submit(ExperimentRequest(
            "mix", suite="micro", workloads=SMALL[:1]))
        assert second.result(timeout=120) is not None
        assert session.job(first.job_id) is None
        assert session.job(second.job_id) is second


def test_job_ttl_sweeps_on_the_status_path_too(tmp_path):
    """Expired jobs vanish from ``job()``/``jobs()`` without a new submit.

    A status-polling client (``repro serve`` with no further submissions)
    must not see expired jobs forever just because nothing new arrived;
    the sweep runs on the read path as well.  The injected clock makes the
    expiry deterministic — no sleeps.
    """
    class FakeClock:
        def __init__(self):
            self.now = 100.0

        def __call__(self):
            return self.now

    clock = FakeClock()
    with Session(jobs=1, cache=tmp_path / "cache", job_ttl_s=30.0,
                 clock=clock) as session:
        job = session.submit(small_request())
        assert job.result(timeout=120) is not None
        clock.now += 29.0
        assert session.job(job.job_id) is job     # inside the TTL
        clock.now += 2.0                          # now past it
        assert session.job(job.job_id) is None
        assert session.jobs() == []


def test_inflight_jobs_are_never_evicted(tmp_path):
    """The cap only applies to terminal jobs; a running job survives any
    number of subsequent submissions."""
    release = threading.Event()
    started = threading.Event()

    def stall(job, key, cached):
        started.set()
        release.wait(timeout=60)

    with Session(jobs=1, cache=tmp_path / "cache", workers=2,
                 max_retained_jobs=1, job_ttl_s=None) as session:
        running = session.submit(
            ExperimentRequest("fig8", suite="micro", workloads=SMALL),
            on_progress=stall)
        started.wait(timeout=60)
        try:
            quick = session.submit(ExperimentRequest(
                "mix", suite="micro", workloads=SMALL[:1]))
            assert quick.result(timeout=120) is not None
            # In-flight job still present despite the cap of 1.
            assert session.job(running.job_id) is running
        finally:
            release.set()
        assert running.result(timeout=240) is not None


def test_session_rejects_bad_retention_arguments():
    with pytest.raises(ValueError, match="max_retained_jobs"):
        Session(max_retained_jobs=0)
    with pytest.raises(ValueError, match="job_ttl_s"):
        Session(job_ttl_s=0.0)


def test_status_carries_live_occupancy_for_recording_experiments(tmp_path):
    with Session(jobs=1, cache=tmp_path / "cache") as session:
        job = session.submit(ExperimentRequest(
            "bottleneck", suite="micro", workloads=SMALL[:1]))
        report = job.result(timeout=240)
        status = job.status()
    assert status.occupancy
    assert "micro_addi_chain/4wide/RENO" in status.occupancy
    for summary in status.occupancy.values():
        assert 0.0 <= summary["structures"]["rob"]["utilization"] <= 1.0
    # The finished report carries the same per-cell section.
    assert report.occupancy
    assert set(report.occupancy) == set(status.occupancy)
    # And the status round-trips through its wire form, occupancy included.
    assert JobStatus.from_dict(status.to_dict()) == status


def test_status_occupancy_is_none_without_recording(tmp_path):
    with Session(jobs=1, cache=tmp_path / "cache") as session:
        job = session.submit(small_request())
        assert job.result(timeout=120) is not None
        assert job.status().occupancy is None
