"""Tests for time-sliced, disk-checkpointed simulation (repro.api.checkpoint)."""

from dataclasses import fields

import pytest

from repro.api import resume_sliced, run_sliced
from repro.core import RenoConfig, RenoRenamer
from repro.functional.simulator import FunctionalSimulator
from repro.uarch.config import MachineConfig
from repro.uarch.core import Pipeline
from repro.workloads.base import get_workload


@pytest.fixture(scope="module")
def run_inputs():
    program = get_workload("micro_call_spill").build(2)
    trace = FunctionalSimulator(program, 2_000_000).run().trace
    return program, trace


def make_pipeline(run_inputs, reno=None):
    program, trace = run_inputs
    machine = MachineConfig.default_4wide()
    renamer = RenoRenamer(machine.num_physical_regs, reno) if reno else None
    return Pipeline(program, trace, machine, renamer=renamer)


def stats_dict(result):
    return {f.name: getattr(result.stats, f.name) for f in fields(result.stats)}


def test_run_sliced_matches_one_shot(run_inputs, tmp_path):
    reference = make_pipeline(run_inputs).run()
    seen = []
    checkpoint = tmp_path / "run.ckpt"
    result = run_sliced(make_pipeline(run_inputs), slice_cycles=200,
                        checkpoint_path=checkpoint,
                        on_slice=lambda p, r: seen.append(r.finished))
    assert stats_dict(result) == stats_dict(reference)
    assert result.final_registers == reference.final_registers
    assert seen[-1] and not all(seen)       # really ran in several slices
    assert not checkpoint.exists()          # removed on completion


def test_run_sliced_respects_max_slices(run_inputs, tmp_path):
    checkpoint = tmp_path / "partial.ckpt"
    partial = run_sliced(make_pipeline(run_inputs), slice_cycles=100,
                         checkpoint_path=checkpoint, max_slices=2)
    assert not partial.finished
    assert partial.stats.cycles == 200
    assert checkpoint.exists()              # parked for a later resume


def test_resume_sliced_from_disk(run_inputs, tmp_path):
    reno = RenoConfig.reno_default()
    reference = make_pipeline(run_inputs, reno).run()
    checkpoint = tmp_path / "resume.ckpt"
    partial = run_sliced(make_pipeline(run_inputs, reno), slice_cycles=150,
                         checkpoint_path=checkpoint, max_slices=3)
    assert not partial.finished
    # A different process would rebuild the pipeline from the same inputs.
    resumed = resume_sliced(make_pipeline(run_inputs, reno), checkpoint,
                            slice_cycles=150)
    assert resumed.finished
    assert stats_dict(resumed) == stats_dict(reference)
    assert resumed.final_registers == reference.final_registers
    assert not checkpoint.exists()


def test_run_sliced_validates_budget(run_inputs):
    with pytest.raises(ValueError, match="slice_cycles"):
        run_sliced(make_pipeline(run_inputs), slice_cycles=0)
