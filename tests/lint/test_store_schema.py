"""Fixture tests for the ``store-schema`` checker.

Same shape as the ``schema-freeze`` fixtures: a miniature repo tree is
written under ``tmp_path`` and linted against a freshly generated
baseline.  The store contract lives in the same baseline document as the
wire schema (under ``"store"``), so every fixture tree carries *both*
schema modules — ``update_baseline`` refuses to run without the wire one.
"""

import json
import textwrap

import pytest

from repro.lint import LintUsageError, run_lint, update_baseline

WIRE_SCHEMA = """\
    from dataclasses import dataclass

    WIRE_SCHEMA_VERSION = 3


    @dataclass
    class Ping:
        job_id: str
"""

STORE_SCHEMA = """\
    from dataclasses import dataclass

    STORE_SCHEMA_VERSION = 1
    AUTH_HEADER = "Authorization"
    AUTH_SCHEME = "Bearer"


    @dataclass
    class BlobPutReply:
        stored: bool
        schema_version: int = 1
"""


def write_tree(tmp_path, store_source, wire_source=WIRE_SCHEMA):
    for rel, source in (("src/repro/api/schema.py", wire_source),
                        ("src/repro/store/schema.py", store_source)):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))


def store_findings(tmp_path):
    return run_lint(["src"], root=tmp_path, rules=["store-schema"])


def test_store_schema_round_trip_is_clean(tmp_path):
    write_tree(tmp_path, STORE_SCHEMA)
    update_baseline(tmp_path)
    assert store_findings(tmp_path) == []


def test_baseline_document_carries_both_contracts(tmp_path):
    write_tree(tmp_path, STORE_SCHEMA)
    baseline = update_baseline(tmp_path)
    document = json.loads(baseline.read_text())
    assert document["wire_schema_version"] == 3
    assert "Ping" in document["classes"]
    store = document["store"]
    assert store["store_schema_version"] == 1
    assert store["auth"] == {"AUTH_HEADER": "Authorization",
                             "AUTH_SCHEME": "Bearer"}
    assert "BlobPutReply" in store["classes"]


def test_store_schema_flags_field_removal(tmp_path):
    write_tree(tmp_path, STORE_SCHEMA)
    update_baseline(tmp_path)
    write_tree(tmp_path, STORE_SCHEMA.replace("        stored: bool\n", ""))
    findings = store_findings(tmp_path)
    assert any("BlobPutReply.stored was removed" in f.message
               for f in findings)


def test_store_schema_requires_version_bump_for_additions(tmp_path):
    write_tree(tmp_path, STORE_SCHEMA)
    update_baseline(tmp_path)
    added = STORE_SCHEMA + "        digest: str = \"\"\n"
    write_tree(tmp_path, added)
    findings = store_findings(tmp_path)
    assert len(findings) == 1
    assert "without a STORE_SCHEMA_VERSION bump" in findings[0].message
    assert "BlobPutReply.digest" in findings[0].message

    # Bump + regenerate is the sanctioned path back to clean.
    write_tree(tmp_path, added.replace("STORE_SCHEMA_VERSION = 1",
                                       "STORE_SCHEMA_VERSION = 2"))
    update_baseline(tmp_path)
    assert store_findings(tmp_path) == []


def test_auth_change_fails_even_with_a_version_bump(tmp_path):
    write_tree(tmp_path, STORE_SCHEMA)
    update_baseline(tmp_path)
    write_tree(tmp_path, STORE_SCHEMA
               .replace('AUTH_HEADER = "Authorization"',
                        'AUTH_HEADER = "X-Repro-Token"')
               .replace("STORE_SCHEMA_VERSION = 1",
                        "STORE_SCHEMA_VERSION = 2"))
    findings = store_findings(tmp_path)
    assert any("AUTH_HEADER" in f.message
               and "frozen unconditionally" in f.message
               for f in findings)


def test_update_baseline_refuses_auth_changes_without_force(tmp_path):
    write_tree(tmp_path, STORE_SCHEMA)
    update_baseline(tmp_path)
    write_tree(tmp_path, STORE_SCHEMA.replace('AUTH_SCHEME = "Bearer"',
                                              'AUTH_SCHEME = "Token"'))
    with pytest.raises(LintUsageError, match="AUTH_SCHEME"):
        update_baseline(tmp_path)
    # --force is the explicit override.
    update_baseline(tmp_path, force=True)
    assert store_findings(tmp_path) == []


def test_missing_store_section_is_a_finding(tmp_path):
    write_tree(tmp_path, STORE_SCHEMA)
    baseline = update_baseline(tmp_path)
    document = json.loads(baseline.read_text())
    del document["store"]
    baseline.write_text(json.dumps(document))
    findings = store_findings(tmp_path)
    assert len(findings) == 1
    assert "no 'store' section" in findings[0].message


def test_trees_without_a_store_module_are_silent(tmp_path):
    # Pre-store fixture trees (every schema-freeze test) must stay clean.
    path = tmp_path / "src/repro/api/schema.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(WIRE_SCHEMA))
    update_baseline(tmp_path)
    assert store_findings(tmp_path) == []
