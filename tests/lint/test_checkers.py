"""Fixture tests for the four invariant checkers (plus the folded gates).

Every checker gets both directions: a *must-flag* fixture seeding exactly
the violation the rule exists for (a builtin ``hash()``, an unlocked write
to a ``_GUARDED_BY_LOCK`` attribute, a wire-schema field removal against
the baseline, an unsnapshotted ``__init__`` attribute) and a *must-pass*
fixture showing the sanctioned alternative stays silent.
"""

import textwrap

from repro.lint import run_lint, update_baseline


def lint_tree(tmp_path, files, rules):
    """Write ``files`` (rel -> source) under ``tmp_path`` and lint them."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint(sorted(files), root=tmp_path, rules=rules)


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


def test_determinism_flags_builtin_hash_everywhere(tmp_path):
    findings = lint_tree(tmp_path, {"tools/keys.py": """\
        def cache_key(payload):
            return hash(payload)
    """}, rules=["determinism"])
    assert len(findings) == 1
    assert findings[0].line == 2
    assert "hash()" in findings[0].message


def test_determinism_flags_wall_clock_and_rng_in_sim_dirs(tmp_path):
    findings = lint_tree(tmp_path, {"uarch/run.py": """\
        import random
        import time

        def jitter():
            stamp = time.time()
            return stamp + random.random()
    """}, rules=["determinism"])
    messages = [f.message for f in findings]
    assert len(findings) == 2
    assert any("time.time()" in m for m in messages)
    assert any("random.random" in m for m in messages)


def test_determinism_flags_unseeded_random_and_from_import(tmp_path):
    findings = lint_tree(tmp_path, {"harness/gen.py": """\
        import random
        from random import randint

        def build():
            return random.Random()
    """}, rules=["determinism"])
    messages = [f.message for f in findings]
    assert any("without a seed" in m for m in messages)
    assert any("importing names" in m for m in messages)


def test_determinism_flags_raw_set_iteration(tmp_path):
    findings = lint_tree(tmp_path, {"tools/order.py": """\
        pending = set()

        def drain():
            for item in pending:
                yield item

        def snapshot():
            ordered = [x for x in {1, 2}]
            return list(pending) + ordered
    """}, rules=["determinism"])
    assert len(findings) == 3
    assert all("hash order" in f.message for f in findings)


def test_determinism_passes_sanctioned_alternatives(tmp_path):
    findings = lint_tree(tmp_path, {"uarch/clean.py": """\
        import hashlib
        import random
        import time

        def build(seed):
            rng = random.Random(seed)
            started = time.monotonic()
            digest = hashlib.sha256(b"payload").hexdigest()
            order = sorted({digest})
            ok = digest in {"a", "b"}
            return rng, started, order, ok
    """}, rules=["determinism"])
    assert findings == []


def test_determinism_allows_wall_clock_outside_sim_dirs(tmp_path):
    findings = lint_tree(tmp_path, {"tools/bench.py": """\
        import time

        def stamp():
            return time.time()
    """}, rules=["determinism"])
    assert findings == []


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------

GUARDED_CLASS = """\
    import threading

    class Broker:
        _GUARDED_BY_LOCK = ("_state", "_count")

        def __init__(self):
            self._lock = threading.Lock()
            self._state = "idle"
            self._count = 0
"""


def test_lock_discipline_flags_unlocked_write(tmp_path):
    findings = lint_tree(tmp_path, {"api/broker.py": GUARDED_CLASS + """\

        def poke(self):
            self._state = "poked"
    """}, rules=["lock-discipline"])
    assert len(findings) == 1
    assert "writes it outside" in findings[0].message
    assert "Broker._state" in findings[0].message


def test_lock_discipline_flags_unlocked_read(tmp_path):
    findings = lint_tree(tmp_path, {"api/broker.py": GUARDED_CLASS + """\

        def peek(self):
            return self._count
    """}, rules=["lock-discipline"])
    assert len(findings) == 1
    assert "reads it outside" in findings[0].message


def test_lock_discipline_accepts_locked_access_and_conventions(tmp_path):
    findings = lint_tree(tmp_path, {"api/broker.py": GUARDED_CLASS + """\

        def poke(self):
            with self._lock:
                self._state = "poked"
                self._bump_locked()

        def _bump_locked(self):
            self._count += 1
    """}, rules=["lock-discipline"])
    assert findings == []


def test_lock_discipline_treats_closures_as_unlocked(tmp_path):
    # A nested def captured under the lock can run long after the lock is
    # released, so its guarded accesses count as unlocked.
    findings = lint_tree(tmp_path, {"api/broker.py": GUARDED_CLASS + """\

        def deferred(self):
            with self._lock:
                def callback():
                    return self._state
                return callback
    """}, rules=["lock-discipline"])
    assert len(findings) == 1
    assert "reads it outside" in findings[0].message


def test_lock_discipline_ignores_unannotated_classes(tmp_path):
    findings = lint_tree(tmp_path, {"api/plain.py": """\
        class Plain:
            def poke(self):
                self._state = "free"
    """}, rules=["lock-discipline"])
    assert findings == []


# ---------------------------------------------------------------------------
# schema-freeze
# ---------------------------------------------------------------------------

SCHEMA_V3 = """\
    from dataclasses import dataclass, field

    WIRE_SCHEMA_VERSION = 3


    @dataclass
    class Ping:
        job_id: str
        attempts: int = 1
        tags: dict = field(default_factory=dict)
"""


def write_schema(tmp_path, source):
    path = tmp_path / "src/repro/api/schema.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))


def schema_findings(tmp_path):
    return run_lint(["src"], root=tmp_path, rules=["schema-freeze"])


def test_schema_freeze_round_trip_is_clean(tmp_path):
    write_schema(tmp_path, SCHEMA_V3)
    update_baseline(tmp_path)
    assert schema_findings(tmp_path) == []


def test_schema_freeze_flags_field_removal_against_baseline(tmp_path):
    write_schema(tmp_path, SCHEMA_V3)
    update_baseline(tmp_path)
    write_schema(tmp_path,
                 SCHEMA_V3.replace("        attempts: int = 1\n", ""))
    findings = schema_findings(tmp_path)
    assert len(findings) == 1
    assert "Ping.attempts was removed" in findings[0].message


def test_schema_freeze_flags_type_and_default_changes(tmp_path):
    write_schema(tmp_path, SCHEMA_V3)
    update_baseline(tmp_path)
    write_schema(tmp_path, SCHEMA_V3
                 .replace("job_id: str", "job_id: bytes")
                 .replace("attempts: int = 1", "attempts: int = 2"))
    messages = [f.message for f in schema_findings(tmp_path)]
    assert any("changed type" in m for m in messages)
    assert any("changed default" in m for m in messages)


def test_schema_freeze_flags_reorder(tmp_path):
    write_schema(tmp_path, SCHEMA_V3)
    update_baseline(tmp_path)
    write_schema(tmp_path, """\
        from dataclasses import dataclass, field

        WIRE_SCHEMA_VERSION = 3


        @dataclass
        class Ping:
            attempts: int = 1
            job_id: str = ""
            tags: dict = field(default_factory=dict)
    """)
    messages = [f.message for f in schema_findings(tmp_path)]
    assert any("reordered its wire fields" in m for m in messages)


def test_schema_freeze_requires_version_bump_for_additions(tmp_path):
    write_schema(tmp_path, SCHEMA_V3)
    update_baseline(tmp_path)
    added = SCHEMA_V3 + "        retries: int = 0\n"
    write_schema(tmp_path, added)
    findings = schema_findings(tmp_path)
    assert len(findings) == 1
    assert "without a WIRE_SCHEMA_VERSION bump" in findings[0].message
    assert "Ping.retries" in findings[0].message

    # Bump + regenerate is the sanctioned path back to clean.
    write_schema(tmp_path, added.replace("WIRE_SCHEMA_VERSION = 3",
                                         "WIRE_SCHEMA_VERSION = 4"))
    update_baseline(tmp_path)
    assert schema_findings(tmp_path) == []


def test_schema_freeze_flags_missing_baseline(tmp_path):
    write_schema(tmp_path, SCHEMA_V3)
    findings = schema_findings(tmp_path)
    assert len(findings) == 1
    assert "baseline" in findings[0].message
    assert "--update-baseline" in findings[0].message


# ---------------------------------------------------------------------------
# snapshot-coverage
# ---------------------------------------------------------------------------


def test_snapshot_coverage_flags_unlisted_init_attribute(tmp_path):
    findings = lint_tree(tmp_path, {"uarch/pipe.py": """\
        class Pipe:
            _SNAPSHOT_STATE = ("cycle",)

            def __init__(self):
                self.cycle = 0
                self.scoreboard = {}
    """}, rules=["snapshot-coverage"])
    assert len(findings) == 1
    assert "self.scoreboard" in findings[0].message
    assert "stale state" in findings[0].message


def test_snapshot_coverage_accepts_exempt_tuple(tmp_path):
    findings = lint_tree(tmp_path, {"uarch/pipe.py": """\
        class Pipe:
            _SNAPSHOT_STATE = ("cycle", "scoreboard")
            _SNAPSHOT_EXEMPT = ("config",)

            def __init__(self, config):
                self.config = config
                self.cycle = 0
                self.scoreboard = {}
    """}, rules=["snapshot-coverage"])
    assert findings == []


def test_snapshot_coverage_flags_stale_and_overlapping_entries(tmp_path):
    findings = lint_tree(tmp_path, {"uarch/pipe.py": """\
        class Pipe:
            _SNAPSHOT_STATE = ("cycle", "ghost")
            _SNAPSHOT_EXEMPT = ("cycle",)

            def __init__(self):
                self.cycle = 0
    """}, rules=["snapshot-coverage"])
    messages = [f.message for f in findings]
    assert any("'ghost'" in m and "never assigns" in m for m in messages)
    assert any("'cycle'" in m and "both" in m for m in messages)


# ---------------------------------------------------------------------------
# the folded docs/docstring gates
# ---------------------------------------------------------------------------


def test_docstrings_checker_flags_undocumented_definitions(tmp_path):
    findings = lint_tree(tmp_path, {"src/repro/uarch/mod.py": """\
        def public():
            return 1
    """}, rules=["docstrings"])
    assert findings, "0% coverage must be below the gate"
    assert any("repro.uarch.mod.public" in f.message for f in findings)


def test_docs_checker_flags_broken_link(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "guide.md").write_text("# Guide\n\nSee [gone](missing.md).\n")
    findings = run_lint(["docs"], root=tmp_path, rules=["docs"])
    assert len(findings) == 1
    assert "broken link" in findings[0].message


# ---------------------------------------------------------------------------
# backend-parity
# ---------------------------------------------------------------------------

WINDOW_FIXTURE = """\
    class InFlightWindow:
        __slots__ = ("capacity", "value", "latency")

        def __init__(self, capacity):
            self.capacity = capacity
            self.value = [0] * capacity
            self.latency = [0] * capacity
"""

EMIT_FIXTURE = """\
    WINDOW_FIELDS = ("capacity", "value", "latency")

    WINDOW_EXEMPT = frozenset({"capacity"})
"""


def lint_backend_parity(tmp_path, window=WINDOW_FIXTURE, emit=EMIT_FIXTURE):
    """Write a window/emit fixture pair and run the parity rule over it."""
    return lint_tree(tmp_path, {
        "src/repro/uarch/inflight.py": window,
        "src/repro/uarch/compiled/emit.py": emit,
    }, rules=["backend-parity"])


def test_backend_parity_clean_fixture_passes(tmp_path):
    assert lint_backend_parity(tmp_path) == []


def test_backend_parity_flags_unlisted_init_field(tmp_path):
    findings = lint_backend_parity(tmp_path, window="""\
        class InFlightWindow:
            __slots__ = ("capacity", "value", "latency", "flags")

            def __init__(self, capacity):
                self.capacity = capacity
                self.value = [0] * capacity
                self.latency = [0] * capacity
                self.flags = [0] * capacity
    """)
    assert len(findings) == 1
    assert "self.flags" in findings[0].message
    assert "silently" in findings[0].message
    assert findings[0].path == "src/repro/uarch/inflight.py"


def test_backend_parity_flags_stale_table_entry(tmp_path):
    findings = lint_backend_parity(tmp_path, emit="""\
        WINDOW_FIELDS = ("capacity", "value", "latency", "ghost")

        WINDOW_EXEMPT = frozenset({"capacity"})
    """)
    assert len(findings) == 1
    assert "'ghost'" in findings[0].message
    assert "never assigns" in findings[0].message
    assert findings[0].path == "src/repro/uarch/compiled/emit.py"


def test_backend_parity_flags_order_drift_against_slots(tmp_path):
    findings = lint_backend_parity(tmp_path, emit="""\
        WINDOW_FIELDS = ("capacity", "latency", "value")

        WINDOW_EXEMPT = frozenset({"capacity"})
    """)
    assert len(findings) == 1
    assert "different order" in findings[0].message


def test_backend_parity_flags_exempt_name_outside_table(tmp_path):
    findings = lint_backend_parity(tmp_path, emit="""\
        WINDOW_FIELDS = ("capacity", "value", "latency")

        WINDOW_EXEMPT = frozenset({"capacity", "phantom"})
    """)
    assert len(findings) == 1
    assert "'phantom'" in findings[0].message


def test_backend_parity_skips_trees_without_the_backend(tmp_path):
    findings = lint_tree(tmp_path, {"src/repro/uarch/inflight.py": """\
        class InFlightWindow:
            def __init__(self, capacity):
                self.capacity = capacity
    """}, rules=["backend-parity"])
    assert findings == []
