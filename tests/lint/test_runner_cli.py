"""Runner, suppression, report and CLI tests for ``repro.lint``.

Covers the suppression contract (reasoned line/file directives filter,
bare directives are themselves findings and cannot self-suppress), the
``--json`` report's exact round-trip, baseline-update refusals, the
``python -m repro lint`` exit codes, and the self-check that the linter
is clean over this repository's own ``src/`` tree.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    LintUsageError,
    format_json,
    format_text,
    parse_report,
    run_lint,
    update_baseline,
)

ROOT = Path(__file__).resolve().parent.parent.parent

HASHY = """\
    def cache_key(payload):
        return hash(payload)
"""


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))


def run_cli(*args, cwd=ROOT):
    env = {"PYTHONPATH": str(ROOT / "src")}
    import os

    env = {**os.environ, **env}
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True, text=True, cwd=cwd, env=env)


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def test_reasoned_line_suppression_filters_the_finding(tmp_path):
    write_tree(tmp_path, {"tools/keys.py": """\
        def cache_key(payload):
            return hash(payload)  # repro-lint: disable=determinism -- ints only, unsalted
    """})
    assert run_lint(["tools"], root=tmp_path) == []


def test_reasoned_file_suppression_filters_every_line(tmp_path):
    write_tree(tmp_path, {"tools/keys.py": """\
        # repro-lint: disable-file=determinism -- offline tool, int keys only

        def one(payload):
            return hash(payload)

        def two(payload):
            return hash(payload)
    """})
    assert run_lint(["tools"], root=tmp_path) == []


def test_suppression_for_another_rule_does_not_filter(tmp_path):
    write_tree(tmp_path, {"tools/keys.py": """\
        def cache_key(payload):
            return hash(payload)  # repro-lint: disable=docs -- wrong rule
    """})
    findings = run_lint(["tools"], root=tmp_path)
    assert [f.rule for f in findings] == ["determinism"]


def test_bare_suppression_is_rejected_and_keeps_the_finding(tmp_path):
    write_tree(tmp_path, {"tools/keys.py": """\
        def cache_key(payload):
            return hash(payload)  # repro-lint: disable=determinism
    """})
    findings = run_lint(["tools"], root=tmp_path)
    rules = sorted(f.rule for f in findings)
    assert rules == ["determinism", "suppression"]
    bare = next(f for f in findings if f.rule == "suppression")
    assert "without a reason" in bare.message


def test_bare_suppression_cannot_suppress_itself(tmp_path):
    write_tree(tmp_path, {"tools/quiet.py": """\
        # repro-lint: disable-file=all
        x = 1
    """})
    findings = run_lint(["tools"], root=tmp_path)
    assert [f.rule for f in findings] == ["suppression"]


def test_wildcard_suppression_covers_every_rule(tmp_path):
    write_tree(tmp_path, {"uarch/noisy.py": """\
        import time

        def stamp(payload):
            return hash(payload), time.time()  # repro-lint: disable=all -- fixture
    """})
    assert run_lint(["uarch"], root=tmp_path) == []


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


def test_json_report_round_trips_exactly(tmp_path):
    write_tree(tmp_path, {"tools/keys.py": HASHY, "uarch/t.py": """\
        import time

        def stamp():
            return time.time()
    """})
    findings = run_lint(["tools", "uarch"], root=tmp_path)
    assert len(findings) == 2
    payload = json.loads(format_json(findings))
    assert payload["schema_version"] == 1
    assert payload["count"] == 2
    assert parse_report(format_json(findings)) == findings


def test_text_report_shapes():
    assert format_text([]) == "lint clean: no findings"
    finding = Finding(path="a.py", line=3, rule="determinism", message="boom")
    text = format_text([finding])
    assert "a.py:3: [determinism] boom" in text
    assert "1 finding(s)" in text


def test_findings_sort_deterministically(tmp_path):
    write_tree(tmp_path, {"b/mod.py": HASHY, "a/mod.py": HASHY})
    findings = run_lint(["b", "a"], root=tmp_path)
    assert [f.path for f in findings] == ["a/mod.py", "b/mod.py"]


def test_unknown_rule_and_missing_path_raise(tmp_path):
    with pytest.raises(LintUsageError, match="unknown lint rule"):
        run_lint(["."], root=tmp_path, rules=["no-such-rule"])
    with pytest.raises(LintUsageError, match="no such file"):
        run_lint(["nope"], root=tmp_path)


def test_syntax_error_becomes_a_parse_finding(tmp_path):
    write_tree(tmp_path, {"tools/broken.py": "def oops(:\n"})
    findings = run_lint(["tools"], root=tmp_path)
    assert [f.rule for f in findings] == ["parse"]


# ---------------------------------------------------------------------------
# Baseline update refusals
# ---------------------------------------------------------------------------


def git(*args, cwd):
    subprocess.run(["git", "-c", "user.email=t@t", "-c", "user.name=t",
                    *args], cwd=cwd, check=True, capture_output=True)


def test_update_baseline_refuses_uncommitted_schema_edits(tmp_path):
    write_tree(tmp_path, {"src/repro/api/schema.py": """\
        WIRE_SCHEMA_VERSION = 1
    """})
    git("init", "-q", cwd=tmp_path)
    git("add", "-A", cwd=tmp_path)
    git("commit", "-q", "-m", "seed", cwd=tmp_path)
    update_baseline(tmp_path)     # clean tree: allowed

    (tmp_path / "src/repro/api/schema.py").write_text(
        "WIRE_SCHEMA_VERSION = 2\n")
    with pytest.raises(LintUsageError, match="uncommitted"):
        update_baseline(tmp_path)
    update_baseline(tmp_path, force=True)    # explicit override


def test_update_baseline_refuses_addition_without_version_bump(tmp_path):
    schema = tmp_path / "src/repro/api/schema.py"
    write_tree(tmp_path, {"src/repro/api/schema.py": """\
        from dataclasses import dataclass

        WIRE_SCHEMA_VERSION = 1


        @dataclass
        class Ping:
            job_id: str
    """})
    update_baseline(tmp_path)
    schema.write_text(schema.read_text() + "    retries: int = 0\n")
    with pytest.raises(LintUsageError, match="WIRE_SCHEMA_VERSION bump"):
        update_baseline(tmp_path)
    update_baseline(tmp_path, force=True)    # explicit override


# ---------------------------------------------------------------------------
# CLI exit codes and artifacts
# ---------------------------------------------------------------------------


def test_cli_exit_zero_and_one(tmp_path):
    write_tree(tmp_path, {"tools/clean.py": "X = 1\n",
                          "tools/dirty.py": HASHY})
    ok = run_cli("tools/clean.py", "--root", str(tmp_path))
    assert ok.returncode == 0
    assert "lint clean" in ok.stdout

    bad = run_cli("tools/dirty.py", "--root", str(tmp_path))
    assert bad.returncode == 1
    assert "[determinism]" in bad.stdout


def test_cli_exit_two_on_usage_error(tmp_path):
    result = run_cli("--rule", "no-such-rule", "--root", str(tmp_path))
    assert result.returncode == 2
    assert "unknown lint rule" in result.stderr


def test_cli_json_artifact_round_trips(tmp_path):
    write_tree(tmp_path, {"tools/dirty.py": HASHY})
    report = tmp_path / "lint-report.json"
    result = run_cli("tools/dirty.py", "--root", str(tmp_path),
                     "--json", str(report))
    assert result.returncode == 1
    findings = parse_report(report.read_text())
    assert [f.rule for f in findings] == ["determinism"]
    # The text report is echoed to stderr so CI logs stay readable.
    assert "[determinism]" in result.stderr


def test_cli_json_to_stdout(tmp_path):
    write_tree(tmp_path, {"tools/dirty.py": HASHY})
    result = run_cli("tools/dirty.py", "--root", str(tmp_path), "--json")
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["count"] == 1


def test_cli_list_rules():
    result = run_cli("--list-rules")
    assert result.returncode == 0
    for rule in ("determinism", "lock-discipline", "schema-freeze",
                 "snapshot-coverage", "backend-parity", "docstrings", "docs"):
        assert rule in result.stdout


# ---------------------------------------------------------------------------
# Self-check: this repository lints clean
# ---------------------------------------------------------------------------


def test_repo_src_tree_is_lint_clean():
    findings = run_lint(["src"], root=ROOT)
    assert findings == [], format_text(findings)


def test_repo_schema_baseline_matches_module():
    findings = run_lint(["src"], root=ROOT, rules=["schema-freeze"])
    assert findings == [], format_text(findings)
