"""Tests for the footprint-scaling workload and multi-scale sweeps.

Covers the :func:`~repro.workloads.builder.scaled_footprint` helper, the
``footprint_walk`` kernel's defining property (its *data footprint* grows
with scale, so large scales stress the caches rather than just running
longer), arbitrary-scale ``run_scale_sweep`` grids, and the CLI's
``--scale 1,2,4`` list form.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.core.simulator import simulate
from repro.functional.simulator import FunctionalSimulator
from repro.harness import run_scale_sweep
from repro.workloads.base import get_workload
from repro.workloads.builder import build_footprint_walk, scaled_footprint


def test_scaled_footprint_clamps_both_sides():
    assert scaled_footprint(64, 1) == 64
    assert scaled_footprint(64, 8) == 512
    assert scaled_footprint(64, 0) == 1
    assert scaled_footprint(64, 10**9, maximum=4096) == 4096


def test_footprint_walk_is_registered():
    workload = get_workload("footprint_walk")
    assert workload.suite == "micro"
    assert workload.build(1).instructions


def test_footprint_walk_grows_data_not_just_iterations():
    small = build_footprint_walk(1)
    large = build_footprint_walk(8)
    # The data segment grows with scale (8-byte nodes).
    assert len(large.initial_memory) >= 8 * len(small.initial_memory) - 64
    # The dynamic instruction count grows roughly linearly, like other
    # kernels, so the *ratio* of footprint to work rises with scale.
    small_run = FunctionalSimulator(small).run()
    large_run = FunctionalSimulator(large).run()
    assert small_run.halted and large_run.halted
    ratio = large_run.dynamic_count / small_run.dynamic_count
    assert 4 < ratio < 16


def test_footprint_walk_stresses_the_dcache_at_scale():
    """At scale 16 the pointer chase outgrows the L1 d-cache: the miss
    *rate* must rise clearly above the tiny-footprint configuration."""
    def miss_rate(scale):
        program = build_footprint_walk(scale)
        outcome = simulate(program)
        stats = outcome.timing.stats
        return stats.dcache_misses / max(1, stats.dcache_accesses)

    assert miss_rate(16) > miss_rate(1) + 0.05


def test_run_scale_sweep_accepts_arbitrary_scales(tmp_path):
    report = run_scale_sweep(
        "micro", workloads=["footprint_walk"], scales=(1, 3), jobs=1,
        cache=tmp_path)
    scales_seen = {key[1] for key in report.data if key[0] == "footprint_walk"}
    assert scales_seen == {1, 3}
    small = report.data[("footprint_walk", 1)]["instructions"]
    large = report.data[("footprint_walk", 3)]["instructions"]
    assert large > small


def test_cli_scale_list_runs_the_scale_sweep(tmp_path, capsys):
    out = tmp_path / "sweep.json"
    code = cli_main([
        "run", "scale_sweep", "--suite", "micro",
        "--workloads", "footprint_walk", "--scale", "1,2",
        "--jobs", "1", "--no-cache", "--quiet", "--json", str(out),
    ])
    assert code == 0
    payload = json.loads(out.read_text())
    scales = {json.dumps(key) for key, _ in payload["data"]}
    assert any('"1"' in key or ", 1]" in key for key in scales)
    assert any('"2"' in key or ", 2]" in key for key in scales)


def test_cli_single_scale_runs_the_scale_sweep(tmp_path):
    """A one-element --scale must work for scale_sweep (routed through
    scales=), and duplicate scales are dropped instead of duplicating rows."""
    out = tmp_path / "single.json"
    code = cli_main([
        "run", "scale_sweep", "--suite", "micro",
        "--workloads", "footprint_walk", "--scale", "2,2",
        "--jobs", "1", "--no-cache", "--quiet", "--json", str(out),
    ])
    assert code == 0
    payload = json.loads(out.read_text())
    keys = [key for key, _ in payload["data"]]
    assert len(keys) == len(set(map(str, keys)))   # no duplicated rows


def test_cli_scale_list_rejected_for_grid_experiments(capsys):
    code = cli_main([
        "run", "fig8", "--suite", "micro", "--workloads", "micro_addi_chain",
        "--scale", "1,2", "--no-cache", "--quiet",
    ])
    assert code == 2
    assert "scale_sweep" in capsys.readouterr().err


def test_cli_rejects_malformed_scales(capsys):
    assert cli_main(["run", "fig8", "--scale", "two", "--no-cache"]) == 2
    assert cli_main(["run", "fig8", "--scale", "0", "--no-cache"]) == 2


# ---------------------------------------------------------------------------
# Footprint-scaled SPECint variants (suite "specint_fp")
# ---------------------------------------------------------------------------


def test_specint_fp_suite_is_registered():
    from repro.workloads.suites import suite_by_name

    names = [workload.name for workload in suite_by_name("specint_fp")]
    assert names == ["gzip_fp_like", "perl_fp_like"]
    for name in names:
        workload = get_workload(name)
        assert workload.suite == "specint_fp"
        assert workload.paper_name.endswith(".fp")


@pytest.mark.parametrize("name", ["gzip_fp_like", "perl_fp_like"])
def test_fp_variants_are_deterministic_and_halt(name):
    workload = get_workload(name)
    first = workload.build(2)
    second = workload.build(2)
    assert first.initial_memory == second.initial_memory
    run = FunctionalSimulator(first).run()
    assert run.halted


@pytest.mark.parametrize("name,base_name", [
    ("gzip_fp_like", "gzip_like"),
    ("perl_fp_like", "perl_diffmail_like"),
])
def test_fp_variants_grow_auxiliary_footprint_with_scale(name, base_name):
    fp = get_workload(name)
    base = get_workload(base_name)
    fp_growth = (len(fp.build(16).initial_memory)
                 - len(fp.build(1).initial_memory))
    base_growth = (len(base.build(16).initial_memory)
                   - len(base.build(1).initial_memory))
    # Both grow their input streams; only the fp variant also grows its
    # hash-table structures (gzip: 1 table, perl: 2 tables of 8-byte words).
    assert fp_growth > base_growth + 8 * 64 * 15 - 128
    # At scale 64 the auxiliary structures alone exceed the 32 KiB L1
    # d-cache, the regime fixed-table kernels can never reach.
    assert len(fp.build(64).initial_memory) > 32 * 1024


def test_fp_suite_runs_through_a_figure_sweep(tmp_path):
    """`--suite specint_fp` composes with the registered figure sweeps."""
    from repro.harness import run_experiment

    report = run_experiment("fig8", suite="specint_fp", scale=1, jobs=1,
                            cache=tmp_path)
    labels = [row[0] for row in report.rows]
    assert labels == ["gzip.fp", "perl.fp", "amean"]
    assert report.spec["suite"] == "specint_fp"
