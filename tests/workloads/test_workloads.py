"""Tests for the synthetic workload suites.

Every registered workload must assemble, run to completion within a bounded
instruction budget, and exhibit the dynamic-mix properties the RENO
experiments rely on (presence of register-immediate additions, loads, and —
for the call-heavy kernels — stack traffic).
"""

import pytest

from repro.functional import FunctionalSimulator, mix_statistics
from repro.isa.program import STACK_BASE, Program
from repro.isa.registers import RegisterNames as R
from repro.workloads import (
    get_workload,
    list_workloads,
    mediabench_suite,
    microbench_suite,
    specint_suite,
    suite_by_name,
)

ALL_WORKLOADS = list_workloads()
ALL_NAMES = [workload.name for workload in ALL_WORKLOADS]


def run_workload(name: str, scale: int = 1):
    workload = get_workload(name)
    program = workload.build(scale)
    return FunctionalSimulator(program, max_instructions=2_000_000).run()


# ---------------------------------------------------------------------------
# Registry and suite structure
# ---------------------------------------------------------------------------


def test_suites_have_paper_cardinality():
    assert len(specint_suite()) == 16     # one kernel per SPECint row in Fig. 8
    assert len(mediabench_suite()) == 18  # one kernel per MediaBench row in Fig. 8
    assert len(microbench_suite()) >= 8


def test_all_workloads_have_unique_paper_labels():
    for suite in (specint_suite(), mediabench_suite()):
        labels = [workload.label for workload in suite]
        assert len(labels) == len(set(labels))


def test_suite_by_name_round_trip():
    assert [w.name for w in suite_by_name("specint")] == [w.name for w in specint_suite()]
    with pytest.raises(KeyError):
        suite_by_name("flops")


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        get_workload("not_a_workload")


def test_scale_must_be_positive():
    with pytest.raises(ValueError):
        get_workload("micro_sum").build(0)


# ---------------------------------------------------------------------------
# Every workload assembles and halts
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workload_builds_a_program(name):
    program = get_workload(name).build(1)
    assert isinstance(program, Program)
    assert len(program) > 5


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workload_runs_to_completion(name):
    result = run_workload(name)
    assert result.halted
    assert 100 <= result.dynamic_count <= 1_000_000


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workload_contains_loops(name):
    result = run_workload(name)
    mix = mix_statistics(result.trace)
    assert mix.branches > 0, "every kernel should contain loops"


@pytest.mark.parametrize(
    "name",
    [w.name for w in specint_suite()] + [w.name for w in mediabench_suite()],
)
def test_paper_suite_kernels_touch_memory(name):
    result = run_workload(name)
    mix = mix_statistics(result.trace)
    assert mix.loads + mix.stores > 0, "every paper kernel should touch memory"


@pytest.mark.parametrize(
    "name",
    [w.name for w in specint_suite()] + [w.name for w in mediabench_suite()],
)
def test_paper_suite_kernels_contain_foldable_additions(name):
    """RENO_CF needs register-immediate additions in every paper kernel."""
    result = run_workload(name)
    mix = mix_statistics(result.trace)
    assert mix.reg_imm_add_fraction > 0.05


def test_scaling_increases_work():
    small = run_workload("micro_sum", scale=1).dynamic_count
    large = run_workload("micro_sum", scale=3).dynamic_count
    assert large > 2 * small


def test_workloads_are_deterministic():
    first = run_workload("gzip_like")
    second = run_workload("gzip_like")
    assert first.dynamic_count == second.dynamic_count
    assert first.state.snapshot() == second.state.snapshot()


# ---------------------------------------------------------------------------
# Suite-level dynamic mix properties (the raw material for RENO)
# ---------------------------------------------------------------------------


def _suite_average_mix(suite_name: str):
    fractions = {"moves": 0.0, "addis": 0.0, "loads": 0.0}
    workloads = suite_by_name(suite_name)
    for workload in workloads:
        result = FunctionalSimulator(workload.build(1), max_instructions=2_000_000).run()
        mix = mix_statistics(result.trace)
        fractions["moves"] += mix.move_fraction
        fractions["addis"] += mix.reg_imm_add_fraction
        fractions["loads"] += mix.load_fraction
    count = len(workloads)
    return {key: value / count for key, value in fractions.items()}


def test_specint_suite_mix_is_in_reno_relevant_range():
    mix = _suite_average_mix("specint")
    assert 0.01 <= mix["moves"] <= 0.10
    assert 0.08 <= mix["addis"] <= 0.35
    assert 0.08 <= mix["loads"] <= 0.40


def test_mediabench_suite_has_more_foldable_additions_than_specint():
    """The paper reports a higher reg-imm-addition fraction for MediaBench."""
    spec = _suite_average_mix("specint")
    media = _suite_average_mix("mediabench")
    assert media["addis"] > spec["addis"] * 0.9


def test_call_heavy_kernels_restore_the_stack_pointer():
    for name in ("vortex_like", "parser_like", "perl_diffmail_like", "micro_call_spill"):
        result = run_workload(name)
        assert result.state.read(R.SP) == STACK_BASE, name


def test_call_heavy_kernels_have_stack_spill_pairs():
    """RENO_RA needs store/load pairs through the stack pointer region."""
    result = run_workload("vortex_like")
    stack_stores = set()
    bypassed_loads = 0
    for dyn in result.trace:
        if dyn.eff_addr is None or dyn.eff_addr < STACK_BASE - (1 << 20):
            continue
        if dyn.instruction.is_store:
            stack_stores.add(dyn.eff_addr)
        elif dyn.instruction.is_load and dyn.eff_addr in stack_stores:
            bypassed_loads += 1
    assert bypassed_loads > 10
