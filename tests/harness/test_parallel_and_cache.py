"""Tests for the parallel, cached experiment engine.

Covers the golden-figure regression (parallel and cached re-runs must
reproduce the serial, cold-cache report rows byte-for-byte), cache key and
round-trip behaviour, cross-invocation and cross-process determinism, and
the matrix lookup error.
"""

import os
import subprocess
import sys
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.core.config import RenoConfig
from repro.harness import (
    MatrixLookupError,
    SimulationCache,
    figure8_elimination_and_speedup,
    figure9_critical_path,
    figure10_division_of_labor,
    figure11_issue_width,
    figure11_register_file,
    figure12_scheduler,
    outcome_key,
    program_digest,
    run_matrix,
)
from repro.harness.cache import CACHE_DIR_ENV, resolve_cache
from repro.uarch.config import MachineConfig
from repro.workloads.base import get_workload

SMALL = ["micro_addi_chain", "micro_call_spill"]
MACHINES = {"4wide": MachineConfig.default_4wide()}
RENOS = {"BASE": None, "RENO": RenoConfig.reno_default()}

#: The full figure sweep of the paper's evaluation (fig8–fig12).
FIGURES = [
    figure8_elimination_and_speedup,
    figure9_critical_path,
    figure10_division_of_labor,
    figure11_register_file,
    figure11_issue_width,
    figure12_scheduler,
]


def outcome_fields(outcome) -> dict:
    """Every report-relevant field of a SimulationOutcome, as plain data."""
    return {
        "stats": asdict(outcome.timing.stats),
        "final_registers": outcome.timing.final_registers,
        "cycles": outcome.cycles,
        "ipc": outcome.ipc,
        "timing_records": outcome.timing.timing_records,
    }


# ---------------------------------------------------------------------------
# Golden-figure regression: serial == parallel == cached, byte for byte
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("figure", FIGURES, ids=lambda f: f.__name__)
def test_golden_figures_parallel_and_cached_match_serial(figure, tmp_path):
    cache = SimulationCache(tmp_path / "cache")
    serial = figure("micro", workloads=SMALL, jobs=1, cache=cache)
    assert cache.stats.stores > 0          # cold run populated the cache
    parallel = figure("micro", workloads=SMALL, jobs=2, cache=False)
    warm = figure("micro", workloads=SMALL, jobs=2, cache=cache)

    assert parallel.rows == serial.rows
    assert warm.rows == serial.rows
    assert parallel.headers == serial.headers
    assert parallel.data == serial.data
    assert warm.data == serial.data


def test_warm_cache_run_computes_nothing(tmp_path):
    cache = SimulationCache(tmp_path)
    run_matrix(SMALL, MACHINES, RENOS, cache=cache)
    stores_after_cold = cache.stats.stores
    assert stores_after_cold == len(SMALL) * len(MACHINES) * len(RENOS)
    warm = run_matrix(SMALL, MACHINES, RENOS, cache=cache)
    assert cache.stats.stores == stores_after_cold   # nothing recomputed
    assert cache.stats.hits >= stores_after_cold
    for outcome in warm.outcomes.values():
        assert outcome.cached
        assert outcome.program is None and outcome.functional is None


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


def test_run_matrix_is_deterministic_across_invocations_and_jobs():
    first = run_matrix(SMALL, MACHINES, RENOS, collect_timing=True)
    second = run_matrix(SMALL, MACHINES, RENOS, collect_timing=True)
    parallel = run_matrix(SMALL, MACHINES, RENOS, collect_timing=True, jobs=2)
    assert list(first.outcomes) == list(second.outcomes) == list(parallel.outcomes)
    for key in first.outcomes:
        reference = outcome_fields(first.outcomes[key])
        assert outcome_fields(second.outcomes[key]) == reference
        assert outcome_fields(parallel.outcomes[key]) == reference


def test_simulation_is_deterministic_across_processes():
    """Hash randomisation must not leak into results (IT set placement)."""
    script = (
        "from repro.harness import run_matrix\n"
        "from repro.core.config import RenoConfig\n"
        "from repro.uarch.config import MachineConfig\n"
        "m = run_matrix(['micro_call_spill'], {'m': MachineConfig.default_4wide()},\n"
        "               {'RENO': RenoConfig.reno_default()})\n"
        "o = m.get('micro_call_spill', 'm', 'RENO')\n"
        "print(o.cycles, o.stats.total_eliminated, o.stats.it_hits)\n"
    )
    outputs = set()
    for hash_seed in ("1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        # A warm cache would make both subprocesses trivially identical and
        # the hash-randomisation check vacuous; force real simulations.
        env.pop(CACHE_DIR_ENV, None)
        env.pop("REPRO_JOBS", None)
        src_dir = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run([sys.executable, "-c", script], env=env,
                                capture_output=True, text=True, check=True)
        outputs.add(result.stdout)
    assert len(outputs) == 1, f"results depend on the process hash seed: {outputs}"


# ---------------------------------------------------------------------------
# Cache behaviour
# ---------------------------------------------------------------------------


def test_cache_roundtrip_preserves_timing_results(tmp_path):
    cache = SimulationCache(tmp_path)
    matrix = run_matrix(SMALL[:1], MACHINES, RENOS, collect_timing=True, cache=cache)
    warm = run_matrix(SMALL[:1], MACHINES, RENOS, collect_timing=True, cache=cache)
    for key in matrix.outcomes:
        assert outcome_fields(warm.outcomes[key]) == outcome_fields(matrix.outcomes[key])


def test_cache_key_separates_configs_and_budgets():
    program = get_workload("micro_addi_chain").build(1)
    digest = program_digest(program)
    machine = MachineConfig.default_4wide()
    keys = {
        outcome_key(digest, machine, None, 2_000_000, False),
        outcome_key(digest, machine, RenoConfig.reno_default(), 2_000_000, False),
        outcome_key(digest, machine, RenoConfig.reno_cf_me(), 2_000_000, False),
        outcome_key(digest, machine.with_registers(96), None, 2_000_000, False),
        outcome_key(digest, machine, None, 1_000_000, False),
        outcome_key(digest, machine, None, 2_000_000, True),
    }
    assert len(keys) == 6


def test_config_digest_ignores_label_but_not_behaviour():
    base = MachineConfig.default_4wide()
    relabelled = MachineConfig(name="other")
    assert base.digest() == relabelled.digest()
    assert base.digest() != base.with_scheduler_latency(2).digest()

    reno = RenoConfig.reno_default()
    assert reno.digest() == RenoConfig(name="relabelled").digest()
    assert reno.digest() != reno.with_slow_fusion().digest()
    assert reno.digest() != RenoConfig.reno_cf_me().digest()


def test_config_dict_roundtrip():
    machine = MachineConfig.default_6wide().with_registers(96)
    assert MachineConfig.from_dict(machine.to_dict()) == machine
    reno = RenoConfig.reno_full_integration()
    assert RenoConfig.from_dict(reno.to_dict()) == reno


def test_program_digest_tracks_content_not_name():
    build = get_workload("micro_addi_chain").build
    assert program_digest(build(1)) == program_digest(build(1))
    assert program_digest(build(1)) != program_digest(build(2))
    other = get_workload("micro_call_spill").build(1)
    assert program_digest(build(1)) != program_digest(other)


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    import pickle

    cache = SimulationCache(tmp_path)
    run_matrix(SMALL[:1], MACHINES, {"BASE": None}, cache=cache)
    entry = cache.entries()[0]
    entry.write_bytes(b"not a pickle")
    assert cache.get(entry.stem) is None
    entry.write_bytes(pickle.dumps(["not", "a", "dict"]))
    assert cache.get(entry.stem) is None


def test_parallel_run_aggregates_worker_cache_stats(tmp_path):
    cache = SimulationCache(tmp_path)
    run_matrix(SMALL, MACHINES, RENOS, jobs=2, cache=cache)
    expected = len(SMALL) * len(MACHINES) * len(RENOS)
    assert cache.stats.stores == expected
    run_matrix(SMALL, MACHINES, RENOS, jobs=2, cache=cache)
    assert cache.stats.stores == expected        # warm: nothing recomputed
    assert cache.stats.hits == expected


def test_cache_env_var_controls_default(tmp_path, monkeypatch):
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    assert resolve_cache(None) is None                # off by default
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    resolved = resolve_cache(None)
    assert resolved is not None and resolved.root == tmp_path
    assert resolve_cache(False) is None               # explicit off wins
    run_matrix(SMALL[:1], MACHINES, {"BASE": None})   # cache=None → env cache
    assert len(SimulationCache(tmp_path)) == 1


def test_cache_clear(tmp_path):
    cache = SimulationCache(tmp_path)
    run_matrix(SMALL[:1], MACHINES, RENOS, cache=cache)
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0


# ---------------------------------------------------------------------------
# Matrix lookup errors
# ---------------------------------------------------------------------------


def test_matrix_lookup_error_names_the_missing_triple():
    matrix = run_matrix(SMALL[:1], MACHINES, {"BASE": None})
    with pytest.raises(MatrixLookupError) as excinfo:
        matrix.get("micro_addi_chain", "4wide", "RENO")
    message = str(excinfo.value)
    assert "reno='RENO'" in message
    assert "machine='4wide'" in message
    assert "'BASE'" in message            # the labels that do exist
    assert isinstance(excinfo.value, KeyError)
    assert excinfo.value.triple == ("micro_addi_chain", "4wide", "RENO")


def test_speedup_raises_the_same_error_for_missing_baseline():
    matrix = run_matrix(SMALL[:1], MACHINES, {"RENO": RenoConfig.reno_default()})
    with pytest.raises(MatrixLookupError, match="BASE"):
        matrix.speedup("micro_addi_chain", "4wide", "RENO")


# ---------------------------------------------------------------------------
# The deprecated parallel shim
# ---------------------------------------------------------------------------


def test_parallel_shim_warns_and_still_reexports_the_engine():
    """Importing repro.harness.parallel must raise DeprecationWarning while
    keeping the original names aliased to repro.harness.executors."""
    import importlib

    import repro.harness.executors as executors
    import repro.harness.parallel as shim

    with pytest.warns(DeprecationWarning, match="repro.harness.executors"):
        shim = importlib.reload(shim)
    assert shim.execute_grid is executors.execute_grid
    assert shim.run_workload_block is executors.run_workload_block
    assert shim.WorkloadTask is executors.WorkloadTask
    assert shim.resolve_jobs is executors.resolve_jobs
    assert shim.JOBS_ENV == executors.JOBS_ENV
