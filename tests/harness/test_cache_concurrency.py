"""Multi-process stress tests for concurrent-writer safety in the cache.

Parallel Sessions sharing one ``$REPRO_CACHE_DIR`` write two kinds of
shared files: content-addressed outcome entries (atomic temp-file + rename,
last-writer-wins is fine because the content is identical) and the cost
model's ``costs.json`` (read-modify-write, guarded by the ``flock`` file
lock).  These tests hammer both from real processes and assert nothing is
lost or torn.
"""

import json
import multiprocessing
import pickle

import pytest

from repro.harness.cache import SimulationCache, file_lock
from repro.harness.executors import CostModel, WorkloadTask
from repro.workloads.base import get_workload

WRITERS = 4
RECORDS_PER_WRITER = 6


def _task_for(writer: int, index: int) -> WorkloadTask:
    return WorkloadTask(
        workload=get_workload("micro_addi_chain"),
        scale=1 + writer * RECORDS_PER_WRITER + index,
        machines=(), renos=(), collect_timing=False,
        max_instructions=1000, cache_root=None,
    )


def _hammer_cost_model(root: str, writer: int) -> None:
    model = CostModel(root)
    for index in range(RECORDS_PER_WRITER):
        model.record(_task_for(writer, index), 0.001 * (writer + 1))


def _hammer_cache_puts(root: str, writer: int) -> None:
    """Everyone writes the same keys concurrently (the racing-worker case)."""
    cache = SimulationCache(root)
    payload_dir = cache.root
    payload_dir.mkdir(parents=True, exist_ok=True)
    for round_number in range(RECORDS_PER_WRITER):
        for key_number in range(4):
            # Reach the atomic write machinery directly with a tiny stand-in
            # payload: SimulationCache.put pickles (version, timing, reno).
            path = cache.path_for(f"{key_number:02x}" + "ab" * 31)
            path.parent.mkdir(parents=True, exist_ok=True)
            cache._store_failure_warned = True
            import os
            import tempfile
            descriptor, temp_name = tempfile.mkstemp(dir=path.parent,
                                                     suffix=".tmp")
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump({"version": 1, "writer": writer,
                             "round": round_number}, handle)
            os.replace(temp_name, path)


@pytest.fixture()
def spawn_context():
    # fork is what the engine uses, but spawn also exercises cold modules;
    # use fork when available for speed, else whatever the platform has.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods
                                      else methods[0])


def test_parallel_cost_model_records_lose_nothing(tmp_path, spawn_context):
    processes = [
        spawn_context.Process(target=_hammer_cost_model,
                              args=(str(tmp_path), writer))
        for writer in range(WRITERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0

    stored = json.loads((tmp_path / "costs.json").read_text())
    expected = {
        CostModel.key(_task_for(writer, index))
        for writer in range(WRITERS)
        for index in range(RECORDS_PER_WRITER)
    }
    # The whole point of the lock: every writer's entries survive.
    assert expected <= set(stored)
    assert all(isinstance(value, float) for value in stored.values())


def test_parallel_same_key_entry_writes_never_tear(tmp_path, spawn_context):
    processes = [
        spawn_context.Process(target=_hammer_cache_puts,
                              args=(str(tmp_path / "cache"), writer))
        for writer in range(WRITERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0

    cache = SimulationCache(tmp_path / "cache")
    entries = cache.entries()
    assert len(entries) == 4
    for path in entries:
        payload = pickle.loads(path.read_bytes())   # never torn/partial
        assert payload["version"] == 1
        assert 0 <= payload["writer"] < WRITERS


def test_file_lock_is_mutually_exclusive(tmp_path):
    target = tmp_path / "shared.json"
    with file_lock(target) as held:
        assert held is True
        # A second contender times out onto the degraded (unlocked) path.
        with file_lock(target, timeout=0.05) as second:
            assert second is False
    # Released: the next acquisition succeeds immediately.
    with file_lock(target, timeout=0.05) as held:
        assert held is True


def test_file_lock_ignores_a_dead_holders_leftover_file(tmp_path):
    """Kernel flocks die with their holder, so a leftover ``.lock`` file
    from a crashed process carries no lock and never blocks — the stale
    state the old O_EXCL scheme had to detect cannot exist."""
    target = tmp_path / "shared.json"
    lock = tmp_path / "shared.json.lock"
    lock.write_text("leftover from a dead process")
    with file_lock(target, timeout=0.5) as held:
        assert held is True             # acquired immediately
