"""Tests for the declarative spec/registry API, executors, and the CLI.

Covers: SweepSpec dict/JSON round-trips and validation, registry
completeness (every figure experiment is registered and visible to
``python -m repro list``), ExperimentReport JSON round-trips (including
tuple data keys), the grid-runner label/zero-cycle guards, AutoExecutor
backend selection, and CLI smoke tests (in-process and via subprocess).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.core.config import RenoConfig
from repro.core.simulator import SimulationOutcome
from repro.harness import (
    AutoExecutor,
    ExperimentReport,
    MatrixResult,
    ProcessExecutor,
    SerialExecutor,
    SweepSpec,
    ZeroCycleError,
    get_experiment,
    list_experiments,
    resolve_executor,
    run_experiment,
    run_matrix,
)
from repro.harness.executors import JOBS_ENV, build_tasks
from repro.uarch.config import MachineConfig
from repro.uarch.core import SimResult
from repro.uarch.stats import SimStats
from repro.workloads.base import get_workload

SMALL = ["micro_addi_chain", "micro_call_spill"]
MACHINES = {"4wide": MachineConfig.default_4wide()}
RENOS = {"BASE": None, "RENO": RenoConfig.reno_default()}

#: Experiments built on SweepSpec grids (spec provenance in their reports).
SPEC_EXPERIMENTS = ["fig8", "fig9", "fig10", "fig11_regs", "fig11_width",
                    "fig12", "fusion", "it_cost"]

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def small_spec(**overrides) -> SweepSpec:
    kwargs = dict(
        suite="micro",
        workloads=tuple(SMALL),
        machines=tuple(MACHINES.items()),
        renos=tuple(RENOS.items()),
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def subprocess_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


# ---------------------------------------------------------------------------
# SweepSpec: round-trips, hashing, validation
# ---------------------------------------------------------------------------


def test_spec_dict_and_json_roundtrip():
    spec = small_spec(scale=2, collect_timing=True, max_instructions=123_456)
    assert SweepSpec.from_dict(spec.to_dict()) == spec
    assert SweepSpec.from_json(spec.to_json()) == spec
    # to_dict is JSON-safe as-is.
    json.dumps(spec.to_dict())


def test_spec_is_hashable_and_digest_tracks_content():
    spec = small_spec()
    assert hash(spec) == hash(small_spec())
    assert spec.digest() == small_spec().digest()
    assert spec.digest() != small_spec(scale=2).digest()
    assert spec.digest() != small_spec(workloads=tuple(reversed(SMALL))).digest()


def test_spec_from_grid_resolves_suite_and_objects():
    by_name = SweepSpec.from_grid("micro", SMALL, MACHINES, RENOS)
    by_object = SweepSpec.from_grid(
        "micro", [get_workload(name) for name in SMALL], MACHINES, RENOS)
    assert by_name == by_object
    full = SweepSpec.from_grid("micro", None, MACHINES, RENOS)
    assert set(SMALL) <= set(full.workloads)
    assert full.grid_size == len(full.workloads) * 2


def test_spec_rejects_duplicate_labels_and_bad_scale():
    with pytest.raises(ValueError, match="duplicate workload"):
        small_spec(workloads=("micro_addi_chain", "micro_addi_chain"))
    with pytest.raises(ValueError, match="duplicate machine"):
        small_spec(machines=(("m", MachineConfig.default_4wide()),
                             ("m", MachineConfig.default_6wide())))
    with pytest.raises(ValueError, match="duplicate RENO"):
        small_spec(renos=(("R", None), ("R", RenoConfig.reno_default())))
    with pytest.raises(ValueError, match="scale"):
        small_spec(scale=0)
    with pytest.raises(ValueError, match="workload"):
        small_spec(workloads=())


def test_spec_run_matches_run_matrix():
    spec = small_spec(workloads=tuple(SMALL[:1]))
    matrix = spec.run(jobs=1, cache=False)
    reference = run_matrix(SMALL[:1], MACHINES, RENOS, jobs=1, cache=False)
    assert list(matrix.outcomes) == list(reference.outcomes)
    for key in matrix.outcomes:
        assert matrix.outcomes[key].cycles == reference.outcomes[key].cycles


# ---------------------------------------------------------------------------
# Registry completeness
# ---------------------------------------------------------------------------


def test_every_figure_function_is_registered():
    registered = {entry.name for entry in list_experiments()}
    assert {"fig8", "fig9", "fig10", "fig11_regs", "fig11_width", "fig12",
            "mix", "fusion", "it_cost", "scale_sweep"} <= registered


def test_registered_experiments_match_figure_wrappers():
    from repro.harness import experiments as module

    wrappers = {
        "fig8": module.figure8_elimination_and_speedup,
        "fig9": module.figure9_critical_path,
        "fig10": module.figure10_division_of_labor,
        "fig11_regs": module.figure11_register_file,
        "fig11_width": module.figure11_issue_width,
        "fig12": module.figure12_scheduler,
    }
    for name, wrapper in wrappers.items():
        direct = run_experiment(name, suite="micro", workloads=SMALL[:1],
                                jobs=1, cache=False)
        compat = wrapper("micro", workloads=SMALL[:1], jobs=1, cache=False)
        assert compat.rows == direct.rows
        assert compat.data == direct.data
        assert compat.experiment == name


def test_spec_experiments_carry_spec_provenance():
    report = run_experiment("fig8", suite="micro", workloads=SMALL[:1],
                            jobs=1, cache=False)
    assert report.experiment == "fig8"
    spec = SweepSpec.from_dict(report.spec)
    assert spec.workloads == tuple(SMALL[:1])
    assert spec.suite == "micro"
    # Custom-runner experiments have no single generating spec.
    mix = run_experiment("mix", suite="micro", workloads=SMALL[:1])
    assert mix.experiment == "mix" and mix.spec is None


def test_unknown_experiment_error_names_known_ones():
    with pytest.raises(KeyError, match="fig8"):
        get_experiment("fig99")


# ---------------------------------------------------------------------------
# ExperimentReport serialization
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["fig8", "fig10", "fig11_regs"])
def test_report_json_roundtrip_is_exact(name):
    report = run_experiment(name, suite="micro", workloads=SMALL,
                            jobs=1, cache=False)
    restored = ExperimentReport.from_json(report.to_json())
    assert restored == report
    assert str(restored) == str(report)


def test_report_roundtrip_preserves_tuple_keys_with_ints():
    report = run_experiment("fig11_regs", suite="micro", workloads=SMALL[:1],
                            register_sizes=(112, 160), jobs=1, cache=False)
    assert ("BASE", 160) in report.data
    restored = ExperimentReport.from_json(report.to_json())
    assert restored.data[("BASE", 160)] == report.data[("BASE", 160)]
    assert set(restored.data) == set(report.data)


# ---------------------------------------------------------------------------
# Grid-runner guards (satellites)
# ---------------------------------------------------------------------------


def test_run_matrix_rejects_duplicate_workload_names():
    with pytest.raises(ValueError, match="duplicate workload"):
        run_matrix(["micro_addi_chain", "micro_addi_chain"], MACHINES, RENOS)


def test_run_matrix_rejects_duplicate_axis_labels_in_pairs():
    pairs = [("m", MachineConfig.default_4wide()), ("m", MachineConfig.default_6wide())]
    with pytest.raises(ValueError, match="duplicate machine"):
        run_matrix(SMALL[:1], pairs, RENOS)
    reno_pairs = [("BASE", None), ("BASE", RenoConfig.reno_default())]
    with pytest.raises(ValueError, match="duplicate RENO"):
        run_matrix(SMALL[:1], MACHINES, reno_pairs)


def zero_cycle_matrix() -> MatrixResult:
    config = MachineConfig.default_4wide()
    broken = SimulationOutcome(
        program=None, functional=None,
        timing=SimResult(stats=SimStats(), config=config))
    healthy_stats = SimStats()
    healthy_stats.cycles = 100
    healthy = SimulationOutcome(
        program=None, functional=None,
        timing=SimResult(stats=healthy_stats, config=config))
    return MatrixResult(
        outcomes={("w", "m", "BASE"): healthy, ("w", "m", "RENO"): broken},
        workloads=["w"], machine_labels=["m"], reno_labels=["BASE", "RENO"],
    )


def test_speedup_raises_on_zero_cycle_target():
    matrix = zero_cycle_matrix()
    with pytest.raises(ZeroCycleError, match="cycles == 0") as excinfo:
        matrix.speedup("w", "m", "RENO")
    assert excinfo.value.triple == ("w", "m", "RENO")


def test_speedup_raises_on_zero_cycle_baseline():
    matrix = zero_cycle_matrix()
    # Target the healthy outcome against the broken baseline.
    with pytest.raises(ZeroCycleError, match="RENO"):
        matrix.speedup("w", "m", "BASE", baseline_reno="RENO")


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


def micro_tasks(count: int = 2):
    workloads = [get_workload(name) for name in SMALL[:count]]
    return build_tasks(workloads, MACHINES, RENOS)


def test_autoexecutor_picks_serial_on_one_cpu():
    assert isinstance(AutoExecutor(cpu_count=1).static_choice(micro_tasks()),
                      SerialExecutor)


def test_autoexecutor_picks_serial_for_tiny_grids():
    assert isinstance(AutoExecutor(cpu_count=8).static_choice(micro_tasks(1)),
                      SerialExecutor)


def test_autoexecutor_probe_keeps_cheap_grids_serial(monkeypatch):
    def fail(self, tasks, cache):
        raise AssertionError("pool chosen for a cheap grid")

    monkeypatch.setattr(ProcessExecutor, "execute", fail)
    executor = AutoExecutor(cpu_count=8, probe_threshold_s=float("inf"))
    assert executor.static_choice(micro_tasks()) is None   # probe path taken
    blocks = executor.execute(micro_tasks(), cache=None)
    assert len(blocks) == 2
    serial = SerialExecutor().execute(micro_tasks(), cache=None)
    for block, reference in zip(blocks, serial):
        assert [(key, outcome.cycles) for key, outcome in block] == \
               [(key, outcome.cycles) for key, outcome in reference]


def test_autoexecutor_probe_sends_expensive_grids_to_pool(monkeypatch):
    called = {}

    def record(self, tasks, cache):
        called["tasks"] = len(tasks)
        called["jobs"] = self.jobs
        return SerialExecutor().execute(tasks, cache)

    monkeypatch.setattr(ProcessExecutor, "execute", record)
    executor = AutoExecutor(cpu_count=4, probe_threshold_s=0.0)
    executor.execute(micro_tasks(), cache=None)
    assert called["tasks"] == 1            # first task was the in-process probe
    assert called["jobs"] >= 1


def test_autoexecutor_probe_skips_all_hit_blocks(tmp_path, monkeypatch):
    """A warm first workload must not fool the probe into reading the whole
    remainder as free: the probe consumes all-hit blocks and costs the rest
    from the first block that actually computes."""
    from repro.harness.cache import SimulationCache

    names = ["micro_addi_chain", "micro_call_spill", "micro_moves"]
    workloads = [get_workload(name) for name in names]
    cache = SimulationCache(tmp_path)
    # Warm only the first workload's grid points.
    run_matrix(names[:1], MACHINES, RENOS, jobs=1, cache=cache)

    called = {}

    def record(self, tasks, cache):
        called["tasks"] = len(tasks)
        return SerialExecutor().execute(tasks, cache)

    monkeypatch.setattr(ProcessExecutor, "execute", record)
    tasks = build_tasks(workloads, MACHINES, RENOS, cache_root=str(tmp_path))
    executor = AutoExecutor(cpu_count=4, probe_threshold_s=0.0)
    blocks = executor.execute(tasks, cache)
    assert len(blocks) == 3
    # Block 1 was all hits (consumed by the probe), block 2 was the real
    # probe; only the last task reaches the pool.
    assert called["tasks"] == 1


def test_figure_wrappers_accept_adhoc_workload_objects():
    from repro.harness import figure12_scheduler
    from repro.workloads.base import Workload

    base = get_workload("micro_addi_chain")
    adhoc = Workload(name="adhoc_kernel", suite="example", builder=base.builder)
    report = figure12_scheduler("micro", workloads=[adhoc], jobs=1, cache=False)
    assert report.rows
    assert SweepSpec.from_dict(report.spec).workloads == ("adhoc_kernel",)


def test_resolve_executor_forms(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert isinstance(resolve_executor(None), AutoExecutor)
    assert isinstance(resolve_executor("auto"), AutoExecutor)
    assert isinstance(resolve_executor(1), SerialExecutor)
    assert isinstance(resolve_executor(4), ProcessExecutor)
    assert isinstance(resolve_executor("4"), ProcessExecutor)
    monkeypatch.setenv(JOBS_ENV, "2")
    assert isinstance(resolve_executor(None), ProcessExecutor)
    monkeypatch.setenv(JOBS_ENV, "auto")
    assert isinstance(resolve_executor(None), AutoExecutor)
    explicit = SerialExecutor()
    assert resolve_executor(8, executor=explicit) is explicit


def test_jobs_auto_matches_serial_rows():
    auto = run_matrix(SMALL, MACHINES, RENOS, jobs="auto", cache=False)
    serial = run_matrix(SMALL, MACHINES, RENOS, jobs=1, cache=False)
    assert list(auto.outcomes) == list(serial.outcomes)
    for key in auto.outcomes:
        assert auto.outcomes[key].cycles == serial.outcomes[key].cycles


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_run_writes_roundtrippable_json(tmp_path, capsys):
    out = tmp_path / "fig8.json"
    code = cli_main(["run", "fig8", "--suite", "micro",
                     "--workloads", "micro_addi_chain",
                     "--jobs", "auto", "--no-cache", "--json", str(out)])
    assert code == 0
    printed = capsys.readouterr().out
    assert "Figure 8 (micro)" in printed
    report = ExperimentReport.from_json(out.read_text())
    direct = run_experiment("fig8", suite="micro",
                            workloads=["micro_addi_chain"], jobs=1, cache=False)
    assert report == direct
    assert report.to_json() + "\n" == out.read_text()


def test_cli_list_shows_every_registered_experiment(capsys):
    assert cli_main(["list"]) == 0
    printed = capsys.readouterr().out
    for entry in list_experiments():
        assert entry.name in printed


def test_scale_sweep_rejects_single_scale():
    with pytest.raises(ValueError, match="scale_sweep sweeps"):
        run_experiment("scale_sweep", suite="micro", workloads=SMALL[:1], scale=2)


def test_cli_scale_flag_on_scale_sweep_runs_that_one_scale(capsys):
    # The CLI routes any --scale value into scales= for the sweep, so a
    # single value runs a one-scale sweep (the Python-level scale= keyword
    # still raises, see test_scale_sweep_rejects_single_scale).
    code = cli_main(["run", "scale_sweep", "--suite", "micro",
                     "--workloads", "micro_addi_chain", "--scale", "2",
                     "--no-cache", "--quiet"])
    assert code == 0


def test_cli_leaves_jobs_unset_so_env_applies(monkeypatch, capsys):
    import repro.harness.executors as executors_module

    seen = {}
    real = executors_module.resolve_executor

    def spy(jobs=None, executor=None):
        seen["jobs"] = jobs
        return real(jobs, executor)

    monkeypatch.setattr(executors_module, "resolve_executor", spy)
    assert cli_main(["run", "fig8", "--suite", "micro",
                     "--workloads", "micro_addi_chain",
                     "--no-cache", "--quiet"]) == 0
    assert seen["jobs"] is None            # $REPRO_JOBS stays authoritative
    assert cli_main(["run", "fig8", "--suite", "micro",
                     "--workloads", "micro_addi_chain",
                     "--jobs", "2", "--no-cache", "--quiet"]) == 0
    assert seen["jobs"] == "2"


def test_cli_list_workloads_covers_every_suite(capsys):
    from repro.workloads.base import list_workloads

    assert cli_main(["list", "--workloads"]) == 0
    printed = capsys.readouterr().out
    for workload in list_workloads():
        assert workload.suite in printed


def test_cli_rejects_unknown_experiment_and_workload(capsys):
    assert cli_main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err
    assert cli_main(["run", "fig8", "--suite", "micro",
                     "--workloads", "no_such_kernel", "--no-cache"]) == 2
    assert "no_such_kernel" in capsys.readouterr().err


def test_cli_cache_subcommand_reports_and_clears(tmp_path, capsys, monkeypatch):
    from repro.harness.cache import CACHE_DIR_ENV

    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    run_matrix(SMALL[:1], MACHINES, {"BASE": None}, cache=True)
    assert cli_main(["cache"]) == 0
    assert "entries:     1" in capsys.readouterr().out
    assert cli_main(["cache", "--clear"]) == 0
    assert "removed:     1" in capsys.readouterr().out


def test_cli_module_entry_point_via_subprocess():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "list"],
        env=subprocess_env(), capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
    assert "fig8" in result.stdout


def test_cli_run_smoke_via_subprocess(tmp_path):
    out = tmp_path / "fig8.json"
    result = subprocess.run(
        [sys.executable, "-m", "repro", "run", "fig8", "--suite", "micro",
         "--workloads", "micro_addi_chain", "--jobs", "auto",
         "--no-cache", "--json", str(out)],
        env=subprocess_env(), capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
    report = ExperimentReport.from_json(out.read_text())
    assert report.experiment == "fig8"
    assert report.rows


def test_legacy_run_fn_signature_still_works():
    """Externally registered experiments whose run_fn predates the
    progress/cancel hooks must keep working for plain runs (the hooks are
    only passed when a caller actually supplies them)."""
    from repro.harness.spec import EXPERIMENTS, Experiment

    def legacy_run_fn(suite, workloads=None, scale=1, jobs=None, cache=None,
                      executor=None):
        return ExperimentReport(name="legacy", description=suite,
                                headers=["x"], rows=[["1"]])

    entry = Experiment(name="_legacy_test", title="t", description="d",
                       run_fn=legacy_run_fn)
    EXPERIMENTS[entry.name] = entry
    try:
        report = run_experiment("_legacy_test", suite="micro")
        assert report.name == "legacy"
        # With a hook supplied the legacy signature fails loudly (the
        # feature genuinely needs the new parameter) ...
        with pytest.raises(TypeError):
            entry.run(suite="micro", progress=lambda key, cached: None)
    finally:
        del EXPERIMENTS[entry.name]
