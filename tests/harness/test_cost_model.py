"""Tests for the AutoExecutor's persisted cross-run cost model.

The cost model (``costs.json`` next to the outcome cache) stores measured
per-workload cell timings so that later ``jobs="auto"`` runs pick the
serial loop or the process pool without re-probing.  These tests check the
store round-trip, the probe-side recording, the no-probe recall decision in
both directions (cheap → serial, expensive → pool), and the graceful
handling of corrupt stores.
"""

import json

import pytest

from repro.core.config import RenoConfig
from repro.harness import AutoExecutor, ProcessExecutor, SerialExecutor
from repro.harness.cache import SimulationCache
from repro.harness.executors import COSTS_FILENAME, CostModel, build_tasks
import repro.harness.executors as executors_module
from repro.uarch.config import MachineConfig
from repro.workloads.base import get_workload

SMALL = ["micro_addi_chain", "micro_call_spill"]
MACHINES = {"4wide": MachineConfig.default_4wide()}
RENOS = {"BASE": None, "RENO": RenoConfig.reno_default()}


def micro_tasks(count: int = 2, cache_root=None):
    workloads = [get_workload(name) for name in SMALL[:count]]
    return build_tasks(workloads, MACHINES, RENOS,
                       cache_root=str(cache_root) if cache_root else None)


def test_cost_model_round_trip(tmp_path):
    model = CostModel(tmp_path)
    assert model.load() == {}
    task = micro_tasks(1)[0]
    model.record(task, 0.125)
    assert model.load() == {CostModel.key(task): 0.125}
    # Recording another key merges instead of overwriting.
    other = micro_tasks(2)[1]
    model.record(other, 0.5)
    stored = model.load()
    assert stored[CostModel.key(task)] == 0.125
    assert stored[CostModel.key(other)] == 0.5


def test_cost_model_tolerates_corrupt_store(tmp_path):
    (tmp_path / COSTS_FILENAME).write_text("{not json")
    model = CostModel(tmp_path)
    assert model.load() == {}
    (tmp_path / COSTS_FILENAME).write_text(json.dumps(["a", "list"]))
    assert model.load() == {}
    (tmp_path / COSTS_FILENAME).write_text(json.dumps({"k": "not-a-number"}))
    assert model.load() == {}


def test_probe_records_costs_for_later_runs(tmp_path):
    cache = SimulationCache(tmp_path)
    tasks = micro_tasks(2, cache_root=tmp_path)
    executor = AutoExecutor(cpu_count=4, probe_threshold_s=float("inf"))
    blocks = executor.execute(tasks, cache)
    assert len(blocks) == 2
    costs = CostModel(tmp_path).load()
    # The probe computed the first workload's cells and recorded its cost.
    assert CostModel.key(tasks[0]) in costs
    assert costs[CostModel.key(tasks[0])] > 0


def test_recall_skips_the_probe_and_stays_serial(tmp_path, monkeypatch):
    """With every task's cost recorded as cheap, execute() must delegate
    straight to the serial backend without running any in-process probe."""
    cache = SimulationCache(tmp_path)
    tasks = micro_tasks(2, cache_root=tmp_path)
    model = CostModel(tmp_path)
    for task in tasks:
        model.record(task, 1e-6)

    def no_probe(*args, **kwargs):
        raise AssertionError("probe ran despite a fully populated cost model")

    monkeypatch.setattr(executors_module, "run_workload_block", no_probe)
    sentinel = [[("key", None)]]
    monkeypatch.setattr(SerialExecutor, "execute",
                        lambda self, tasks, cache: sentinel)
    executor = AutoExecutor(cpu_count=4, probe_threshold_s=0.5)
    assert executor.execute(tasks, cache) is sentinel


def test_recall_sends_expensive_grids_to_the_pool(tmp_path, monkeypatch):
    cache = SimulationCache(tmp_path)
    tasks = micro_tasks(2, cache_root=tmp_path)
    model = CostModel(tmp_path)
    for task in tasks:
        model.record(task, 10.0)            # clearly beyond the threshold

    called = {}

    def record_pool(self, tasks, cache):
        called["jobs"] = self.jobs
        called["tasks"] = len(tasks)
        return []

    monkeypatch.setattr(ProcessExecutor, "execute", record_pool)
    executor = AutoExecutor(cpu_count=4, probe_threshold_s=0.5)
    executor.execute(tasks, cache)
    assert called == {"jobs": 2, "tasks": 2}


def test_recall_keeps_warm_grids_off_the_pool(tmp_path, monkeypatch):
    """Recorded costs assume uncached cells; when the grid is actually warm
    (the leading task's entries are all cached) the recall must fall back
    to the probe loop, which consumes hits in-process — never to a pool."""
    cache = SimulationCache(tmp_path)
    tasks = micro_tasks(2, cache_root=tmp_path)
    # Warm every grid point, then record expensive-looking costs.
    AutoExecutor(cpu_count=1).execute(tasks, cache)
    model = CostModel(tmp_path)
    for task in tasks:
        model.record(task, 10.0)

    def no_pool(self, tasks, cache):
        raise AssertionError("pool spawned for a fully warm grid")

    monkeypatch.setattr(ProcessExecutor, "execute", no_pool)
    blocks = AutoExecutor(cpu_count=4, probe_threshold_s=0.5).execute(tasks, cache)
    assert len(blocks) == 2


def test_partial_costs_fall_back_to_the_probe(tmp_path):
    """Costs for only some tasks must not trigger the no-probe decision."""
    cache = SimulationCache(tmp_path)
    tasks = micro_tasks(2, cache_root=tmp_path)
    CostModel(tmp_path).record(tasks[0], 1e-6)
    executor = AutoExecutor(cpu_count=4, probe_threshold_s=float("inf"))
    blocks = executor.execute(tasks, cache)
    assert len(blocks) == 2                 # probe path still ran everything
    # ... and completed the model for next time.
    costs = CostModel(tmp_path).load()
    assert CostModel.key(tasks[0]) in costs


def test_auto_results_identical_with_and_without_model(tmp_path):
    """The cost model may only change the backend, never the outcomes."""
    cache = SimulationCache(tmp_path)
    tasks = micro_tasks(2, cache_root=tmp_path)
    executor = AutoExecutor(cpu_count=1)    # static serial: reference result
    reference = executor.execute(tasks, cache)
    model = CostModel(tmp_path)
    for task in tasks:
        model.record(task, 1e-6)
    cold_cache = SimulationCache(tmp_path / "other")
    tasks2 = micro_tasks(2, cache_root=tmp_path / "other")
    for task in tasks2:
        CostModel(tmp_path / "other").record(task, 1e-6)
    recalled = AutoExecutor(cpu_count=4, probe_threshold_s=0.5).execute(
        tasks2, cold_cache)
    assert [[(key, outcome.cycles) for key, outcome in block]
            for block in recalled] == \
        [[(key, outcome.cycles) for key, outcome in block]
         for block in reference]
