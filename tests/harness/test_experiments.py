"""Tests for the experiment harness (small workload subsets for speed)."""

from repro.core import RenoConfig
from repro.harness import (
    figure8_elimination_and_speedup,
    figure9_critical_path,
    figure10_division_of_labor,
    figure11_issue_width,
    figure11_register_file,
    figure12_scheduler,
    fusion_sensitivity,
    instruction_mix,
    integration_table_cost,
    run_matrix,
)
from repro.uarch import MachineConfig

SMALL = ["micro_addi_chain", "micro_call_spill"]


def test_run_matrix_shares_traces_and_indexes_results():
    matrix = run_matrix(
        SMALL,
        {"4wide": MachineConfig.default_4wide()},
        {"BASE": None, "RENO": RenoConfig.reno_default()},
    )
    assert set(matrix.workloads) == set(SMALL)
    outcome = matrix.get("micro_addi_chain", "4wide", "RENO")
    assert outcome.stats.committed > 0
    assert matrix.speedup("micro_addi_chain", "4wide", "RENO") > 0.5


def test_figure8_report_structure():
    report = figure8_elimination_and_speedup("micro", workloads=SMALL)
    assert len(report.rows) == len(SMALL) + 1          # + amean row
    assert "amean" in report.data
    assert 0.0 <= report.data["amean"]["total"] <= 1.0
    assert str(report).count("\n") >= len(SMALL) + 2


def test_figure9_report_has_three_configs_per_workload():
    report = figure9_critical_path("micro", workloads=["micro_addi_chain"])
    assert len(report.rows) == 3
    fractions = report.data[("micro_addi_chain", "RENO")]
    assert abs(sum(fractions.values()) - 1.0) < 1e-9


def test_figure10_report_contains_all_policies():
    report = figure10_division_of_labor("micro", workloads=["micro_call_spill"])
    assert ("micro_call_spill", "RENO") in report.data
    assert ("micro_call_spill", "LoadsInteg") in report.data


def test_figure11_register_file_relative_performance():
    report = figure11_register_file("micro", workloads=["micro_call_spill"],
                                    register_sizes=(112, 160))
    # The reference point (baseline, biggest register file) is 100 %.
    assert abs(report.data[("BASE", 160)] - 1.0) < 1e-9
    assert report.data[("BASE", 112)] <= 1.0 + 1e-9


def test_figure11_issue_width_reference_point():
    report = figure11_issue_width("micro", workloads=["micro_addi_chain"],
                                  widths=((2, 2), (3, 4)))
    assert abs(report.data[("BASE", "i3t4")] - 1.0) < 1e-9
    assert report.data[("BASE", "i2t2")] <= 1.0 + 1e-9


def test_figure12_scheduler_reference_point():
    report = figure12_scheduler("micro", workloads=["micro_addi_chain"])
    assert abs(report.data[("BASE", "sched1")] - 1.0) < 1e-9
    assert report.data[("BASE", "sched2")] <= 1.0 + 1e-9


def test_instruction_mix_report():
    report = instruction_mix("micro", workloads=["micro_moves", "micro_sum"])
    assert report.data["micro_moves"]["moves"] > 0.3
    assert 0 < report.data["amean"]["addis"] < 1


def test_fusion_sensitivity_report():
    report = fusion_sensitivity("micro", workloads=["micro_addi_chain"])
    entry = report.data["micro_addi_chain"]
    assert entry["slow"] <= entry["fast"] + 1e-9


def test_integration_table_cost_report():
    report = integration_table_cost("micro", workloads=["micro_call_spill"])
    entry = report.data["micro_call_spill"]
    assert entry["default"] < entry["full"]
    assert 0.0 < entry["saved"] <= 1.0
