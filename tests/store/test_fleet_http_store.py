"""The fleet over an HTTP store only: no shared filesystem, auth required.

The acceptance shape of the store subsystem: a ``FleetExecutor`` with two
real worker subprocesses where every outcome travels through a
token-authenticated ``repro store-serve`` — the workers share *no*
directory with the broker — must reproduce ``SerialExecutor`` reports
byte-for-byte, and a second identical run must be pure store hits.
"""

import json
import threading

import pytest

from repro.api.fleet import FleetExecutor
from repro.harness.spec import run_experiment
from repro.store import TOKEN_ENV, SqliteStore, make_store_server

WORKLOADS = ["micro_addi_chain", "micro_call_spill"]

#: fig8 over two workloads: 2 workloads x 2 machines x 2 RENO configs.
EXPECTED_CELLS = 8


def report_json(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


@pytest.fixture
def store_server(tmp_path, monkeypatch):
    """A token-authenticated store server; the token rides the env the
    worker subprocesses inherit."""
    monkeypatch.setenv(TOKEN_ENV, "fleet-secret")
    backing = SqliteStore(tmp_path / "store.sqlite3")
    server = make_store_server(backing=backing, token="fleet-secret")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        backing.close()


def test_fleet_over_http_store_matches_serial_byte_for_byte(store_server):
    serial = run_experiment("fig8", suite="micro", workloads=WORKLOADS,
                            jobs=1, cache=False)
    executor = FleetExecutor(workers=2, cache=store_server.url)
    try:
        fleet = run_experiment("fig8", suite="micro", workloads=WORKLOADS,
                               executor=executor, cache=store_server.url)
        assert report_json(fleet) == report_json(serial)

        stats = store_server.backing.stats_payload()
        assert stats["entries"] == EXPECTED_CELLS
        assert stats["stores"] == EXPECTED_CELLS

        # Second identical run: every cell answers from the store before
        # any cell is even submitted to the broker.
        warm = run_experiment("fig8", suite="micro", workloads=WORKLOADS,
                              executor=executor, cache=store_server.url)
        assert report_json(warm) == report_json(serial)
        warm_stats = store_server.backing.stats_payload()
        assert warm_stats["stores"] == EXPECTED_CELLS   # nothing new stored
        assert warm_stats["hits"] >= stats["hits"] + EXPECTED_CELLS
    finally:
        executor.close()
