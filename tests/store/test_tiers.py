"""Protocol tests across all three result-store tiers.

One behavioural suite — payload round-trip, conditional (exactly-once)
puts, corrupt-entry handling, claims, meta documents, stats — run against
the disk, sqlite and HTTP tiers so the tiers cannot drift apart.  The
HTTP tier runs against a real in-thread ``StoreServer``.
"""

import logging
import threading

import pytest

from repro.core.simulator import simulate_workload
from repro.harness.executors import COSTS_META, CostModel, WorkloadTask
from repro.store import (
    STORE_SCHEMA_VERSION,
    DiskStore,
    HTTPStore,
    SqliteStore,
    encode_payload,
    make_store_server,
    open_store,
    store_locator,
)
from repro.uarch.backend import DEFAULT_BACKEND
from repro.workloads.base import get_workload

KEY = "ab" * 32
OTHER_KEY = "cd" * 32


@pytest.fixture(scope="module")
def outcome():
    """One real simulation outcome shared by every round-trip test."""
    return simulate_workload("micro_addi_chain", max_instructions=2000)


@pytest.fixture(params=["disk", "sqlite", "http"])
def store(request, tmp_path):
    """Each tier behind the one ResultStore protocol."""
    if request.param == "disk":
        yield DiskStore(tmp_path / "cache")
        return
    if request.param == "sqlite":
        tier = SqliteStore(tmp_path / "store.sqlite3")
        yield tier
        tier.close()
        return
    backing = SqliteStore(":memory:")
    server = make_store_server(backing=backing)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield HTTPStore(server.url)
    finally:
        server.shutdown()
        server.server_close()
        backing.close()


def test_round_trip_and_contains(store, outcome):
    assert store.get(KEY) is None
    assert not store.contains(KEY)
    assert store.put(KEY, outcome) is True
    assert store.contains(KEY)
    loaded = store.get(KEY)
    assert loaded is not None
    assert loaded.cached is True
    assert loaded.timing.stats == outcome.timing.stats
    assert loaded.timing.final_registers == outcome.timing.final_registers
    assert loaded.cycles == outcome.cycles


def test_put_is_conditional_first_writer_wins(store, outcome):
    assert store.put(KEY, outcome) is True
    assert store.put(KEY, outcome) is False
    assert store.stats.stores == 1
    assert store.stats.duplicate_puts == 1
    assert store.put(OTHER_KEY, outcome) is True
    assert store.stats.stores == 2


def test_claim_conflict_renewal_and_release(store):
    assert store.claim("request/abc", "alice", 60.0) is True
    # Renewal by the same owner is a grant; another owner conflicts.
    assert store.claim("request/abc", "alice", 60.0) is True
    assert store.claim("request/abc", "bob", 60.0) is False
    store.release("request/abc", "bob")        # not the owner: no-op
    assert store.claim("request/abc", "bob", 60.0) is False
    store.release("request/abc", "alice")
    assert store.claim("request/abc", "bob", 60.0) is True


def test_meta_documents_merge(store):
    assert store.get_meta("costs") == {}
    assert store.merge_meta("costs", {"a": 1.0}) == {"a": 1.0}
    merged = store.merge_meta("costs", {"b": 2.0})
    assert merged == {"a": 1.0, "b": 2.0}
    assert store.get_meta("costs") == {"a": 1.0, "b": 2.0}


def test_stats_payload_shape(store, outcome):
    store.put(KEY, outcome)
    store.get(KEY)
    store.get(OTHER_KEY)
    payload = store.stats_payload()
    assert payload["schema_version"] == STORE_SCHEMA_VERSION
    for counter in ("hits", "misses", "stores", "evictions",
                    "duplicate_puts", "claims", "claim_conflicts"):
        assert counter in payload
    assert payload["entries"] == 1
    assert payload["bytes"] > 0
    assert payload["hits"] >= 1
    assert payload["misses"] >= 1


def test_open_store_round_trips_locator(store):
    locator = store_locator(store)
    reopened = open_store(locator)
    assert store_locator(reopened) == locator
    assert type(reopened) is type(store)


# ---------------------------------------------------------------------------
# Corrupt payloads read as misses and are deleted (satellite: corruption)
# ---------------------------------------------------------------------------


def test_disk_corrupt_payload_is_miss_deleted_and_logged(tmp_path, outcome,
                                                         caplog):
    store = DiskStore(tmp_path / "cache")
    store.put(KEY, outcome)
    path = store.path_for(KEY)
    path.write_bytes(b"\x80garbage not a pickle")
    with caplog.at_level(logging.WARNING, logger="repro.store"):
        assert store.get(KEY) is None
    assert not path.exists()                  # deleted, not left to rot
    assert store.stats.misses == 1
    assert any("corrupt" in record.message.lower()
               for record in caplog.records)
    # A truncated (partially written) payload behaves the same way.
    store.put(KEY, outcome)
    blob = encode_payload(outcome)
    store.path_for(KEY).write_bytes(blob[:len(blob) // 2])
    assert store.get(KEY) is None
    assert not store.path_for(KEY).exists()
    # The slot is reusable after deletion.
    assert store.put(KEY, outcome) is True
    assert store.get(KEY) is not None


def test_sqlite_corrupt_payload_is_miss_and_deleted(tmp_path, outcome):
    store = SqliteStore(tmp_path / "store.sqlite3")
    store.put(KEY, outcome)
    with store._lock:
        store._db.execute("UPDATE blobs SET payload = ? WHERE key = ?",
                          (b"\x80garbage", KEY))
        store._db.commit()
    assert store.get(KEY) is None
    assert len(store) == 0
    assert store.put(KEY, outcome) is True
    store.close()


# ---------------------------------------------------------------------------
# The cost model rides the store (satellite: shared probe data)
# ---------------------------------------------------------------------------


def _task(scale: int = 1) -> WorkloadTask:
    return WorkloadTask(
        workload=get_workload("micro_addi_chain"), scale=scale,
        machines=(), renos=(), collect_timing=False,
        max_instructions=1000, cache_root=None)


def test_cost_model_shared_through_store(store):
    writer = CostModel(store)
    writer.record(_task(1), 0.125)
    # A second model over the same store sees the entry — through the
    # HTTP tier that means a *different worker* shares the probe data.
    reader = CostModel(store)
    costs = reader.load()
    assert costs[CostModel.key(_task(1))] == 0.125


def test_cost_model_v1_entries_migrate_to_backend_keys(store):
    v2_key = CostModel.key(_task(1))
    v1_key = v2_key.split("|backend=")[0]
    store.merge_meta(COSTS_META, {v1_key: 0.25})
    costs = CostModel(store).load()
    assert costs[f"{v1_key}|backend={DEFAULT_BACKEND}"] == 0.25
    # A real (v2) entry is never shadowed by the migrated v1 value.
    store.merge_meta(COSTS_META, {v2_key: 0.5})
    costs = CostModel(store).load()
    assert costs[v2_key] == 0.5
