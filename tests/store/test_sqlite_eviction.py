"""Eviction policy of the sqlite tier: LRU size cap, TTL, claim expiry.

All clock-driven behaviour runs on an injected fake clock, so the tests
exercise expiry and recency ordering without sleeping.
"""

import pytest

from repro.core.simulator import simulate_workload
from repro.store import SqliteStore, encode_payload


class FakeClock:
    """A manually advanced wall clock."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def outcome():
    return simulate_workload("micro_addi_chain", max_instructions=2000)


def key(index: int) -> str:
    return f"{index:02x}" * 32


def test_lru_eviction_respects_size_cap(tmp_path, outcome):
    blob_size = len(encode_payload(outcome))
    clock = FakeClock()
    store = SqliteStore(tmp_path / "s.db", max_bytes=3 * blob_size,
                        clock=clock)
    for index in range(3):
        assert store.put(key(index), outcome) is True
        clock.advance(1.0)
    assert len(store) == 3

    # Touch key 0 so key 1 becomes the least recently *accessed*.
    assert store.get(key(0)) is not None
    clock.advance(1.0)

    assert store.put(key(3), outcome) is True
    assert len(store) == 3
    assert store.contains(key(0))             # recently touched: kept
    assert not store.contains(key(1))         # LRU victim
    assert store.stats.evictions == 1

    # An entry bigger than the whole cap is refused outright.
    tiny = SqliteStore(tmp_path / "tiny.db", max_bytes=blob_size // 2)
    assert tiny.put(key(9), outcome) is False
    assert len(tiny) == 0
    tiny.close()
    store.close()


def test_ttl_expires_idle_entries(tmp_path, outcome):
    clock = FakeClock()
    store = SqliteStore(tmp_path / "s.db", ttl_s=10.0, clock=clock)
    store.put(key(0), outcome)
    clock.advance(5.0)
    assert store.contains(key(0))
    assert store.get(key(0)) is not None      # access refreshes recency
    clock.advance(9.0)
    assert store.contains(key(0))             # 9s idle < 10s TTL
    clock.advance(2.0)
    assert not store.contains(key(0))         # 11s idle: expired
    assert store.get(key(0)) is None
    assert store.stats.evictions == 1
    assert len(store) == 0                    # deleted on sight
    store.close()


def test_expired_claims_are_reclaimable(tmp_path):
    clock = FakeClock()
    store = SqliteStore(tmp_path / "s.db", clock=clock)
    assert store.claim("request/x", "alice", ttl_s=10.0) is True
    assert store.claim("request/x", "bob", ttl_s=10.0) is False
    assert store.holder("request/x") == "alice"
    clock.advance(11.0)                       # alice crashed; TTL lapsed
    assert store.holder("request/x") is None
    assert store.claim("request/x", "bob", ttl_s=10.0) is True
    assert store.holder("request/x") == "bob"
    store.close()
