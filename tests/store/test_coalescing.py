"""Cross-session request coalescing through the result store.

Two *separate* :class:`~repro.api.session.Session` objects sharing one
store must execute an identical request exactly once: the store's claim
marker serialises them, and the follower replays the leader's outcomes
as pure cache hits.  Byte-identity of the reports is asserted, not just
equality.
"""

import json
import threading
import time

from repro.api.schema import ExperimentRequest, JobState
from repro.api.session import Session
from repro.store import SqliteStore

WORKLOADS = ["micro_addi_chain", "micro_call_spill"]

REQUEST = ExperimentRequest(experiment="fig8", suite="micro",
                            workloads=tuple(WORKLOADS))

#: fig8 over two workloads: 2 workloads x 2 machines x 2 RENO configs.
EXPECTED_CELLS = 8


def report_json(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


def test_two_sessions_coalesce_to_one_simulation(tmp_path):
    # Each session gets its own SqliteStore *instance* (own connection,
    # own counters) over one shared database file — the same sharing
    # shape as two processes pointing at one ``sqlite://`` locator.
    stores = [SqliteStore(tmp_path / "store.sqlite3") for _ in range(2)]
    sessions = [Session(jobs=1, cache=store) for store in stores]
    reports: dict[int, object] = {}

    def run(index: int) -> None:
        reports[index] = sessions[index].run(REQUEST)

    threads = [threading.Thread(target=run, args=(index,))
               for index in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    for session in sessions:
        session.close()

    assert set(reports) == {0, 1}
    assert report_json(reports[0]) == report_json(reports[1])

    # Exactly one simulation: every cell stored once across both
    # sessions, and no duplicate put ever raced in behind the winner's.
    assert len(stores[0]) == EXPECTED_CELLS
    assert sum(s.stats.stores for s in stores) == EXPECTED_CELLS
    assert sum(s.stats.duplicate_puts for s in stores) == 0
    # The claim marker did its job: somebody waited (or the runs were
    # perfectly disjoint in time — either way, both released cleanly).
    assert stores[0].holder(f"request/{REQUEST.digest()}") is None
    for store in stores:
        store.close()


def test_follower_blocks_until_the_claim_releases(tmp_path):
    """Deterministic claim choreography: the test plays the leader."""
    store = SqliteStore(tmp_path / "store.sqlite3")
    session = Session(jobs=1, cache=store)
    marker = f"request/{REQUEST.digest()}"
    assert store.claim(marker, "leader", ttl_s=60.0) is True

    finished = threading.Event()
    result: list[object] = []

    def follower() -> None:
        result.append(session.run(REQUEST))
        finished.set()

    thread = threading.Thread(target=follower, daemon=True)
    thread.start()
    assert not finished.wait(0.5)            # parked behind the claim
    store.release(marker, "leader")
    assert finished.wait(120)                # released: runs to completion
    thread.join(timeout=10)
    assert result and result[0].rows
    session.close()
    store.close()


def test_cancel_while_waiting_on_a_foreign_claim(tmp_path):
    store = SqliteStore(tmp_path / "store.sqlite3")
    session = Session(jobs=1, cache=store)
    marker = f"request/{REQUEST.digest()}"
    assert store.claim(marker, "leader", ttl_s=60.0) is True

    job = session.submit(REQUEST)
    time.sleep(0.3)                           # let the worker park
    assert job.cancel() is True
    assert job.wait(30)
    assert job.status().state == JobState.CANCELLED
    # The follower never claimed, so the leader's marker is untouched.
    assert store.holder(marker) == "leader"
    session.close()
    store.close()


def test_second_session_is_pure_cache_hits(tmp_path):
    first_store = SqliteStore(tmp_path / "store.sqlite3")
    first = Session(jobs=1, cache=first_store)
    cold = first.run(REQUEST)
    first.close()
    assert first_store.stats.stores == EXPECTED_CELLS
    first_store.close()

    second_store = SqliteStore(tmp_path / "store.sqlite3")
    second = Session(jobs=1, cache=second_store)
    warm = second.run(REQUEST)
    assert report_json(cold) == report_json(warm)
    assert second_store.stats.stores == 0     # zero new simulations
    assert second_store.stats.hits == EXPECTED_CELLS
    second.close()
    second_store.close()
