"""Auth and wire behaviour of the HTTP store tier.

A token-carrying ``StoreServer`` must refuse wrong or missing bearer
credentials with a structured 401 on every route except ``/healthz``,
and the client must surface that as :class:`StoreAuthError` with a
pointer at ``$REPRO_STORE_TOKEN``.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.simulator import simulate_workload
from repro.store import (
    STORE_SCHEMA_VERSION,
    TOKEN_ENV,
    HTTPStore,
    SqliteStore,
    StoreAuthError,
    make_store_server,
    open_store,
)

KEY = "ab" * 32


@pytest.fixture(scope="module")
def outcome():
    return simulate_workload("micro_addi_chain", max_instructions=2000)


@pytest.fixture
def server():
    backing = SqliteStore(":memory:")
    instance = make_store_server(backing=backing, token="sekrit")
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    try:
        yield instance
    finally:
        instance.shutdown()
        instance.server_close()
        backing.close()


def test_healthz_needs_no_auth(server):
    with urllib.request.urlopen(f"{server.url}/healthz", timeout=10) as reply:
        payload = json.loads(reply.read())
    assert payload == {"schema_version": STORE_SCHEMA_VERSION, "ok": True}


def test_wrong_and_missing_tokens_answer_401(server, outcome, monkeypatch):
    monkeypatch.delenv(TOKEN_ENV, raising=False)
    for client in (HTTPStore(server.url),               # no token at all
                   HTTPStore(server.url, token="wrong")):
        with pytest.raises(StoreAuthError) as failure:
            client.get(KEY)
        assert TOKEN_ENV in str(failure.value)
        with pytest.raises(StoreAuthError):
            client.put(KEY, outcome)
        with pytest.raises(StoreAuthError):
            client.claim("request/x", "me", 5.0)
        with pytest.raises(StoreAuthError):
            client.stats_payload()


def test_correct_token_unlocks_every_route(server, outcome):
    client = HTTPStore(server.url, token="sekrit")
    assert client.get(KEY) is None
    assert client.put(KEY, outcome) is True
    assert client.contains(KEY)
    assert client.claim("request/x", "me", 5.0) is True
    client.release("request/x", "me")
    assert client.merge_meta("costs", {"a": 1.0}) == {"a": 1.0}
    stats = client.stats_payload()
    assert stats["schema_version"] == STORE_SCHEMA_VERSION
    assert stats["entries"] == 1


def test_token_defaults_to_environment(server, monkeypatch):
    monkeypatch.setenv(TOKEN_ENV, "sekrit")
    client = open_store(server.url)
    assert isinstance(client, HTTPStore)
    assert client.get(KEY) is None            # authorized via $REPRO_STORE_TOKEN


def test_open_server_ignores_client_tokens(outcome):
    backing = SqliteStore(":memory:")
    instance = make_store_server(backing=backing)          # no token: open
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    try:
        client = HTTPStore(instance.url, token="anything")
        assert client.put(KEY, outcome) is True
        assert client.get(KEY) is not None
    finally:
        instance.shutdown()
        instance.server_close()
        backing.close()


def test_invalid_payload_upload_is_rejected(server):
    client = HTTPStore(server.url, token="sekrit")
    request = urllib.request.Request(
        f"{server.url}/store/blob/{KEY}", data=b"not a payload",
        headers={"Content-Type": "application/octet-stream",
                 "Authorization": "Bearer sekrit"}, method="PUT")
    with pytest.raises(urllib.error.HTTPError) as failure:
        urllib.request.urlopen(request, timeout=10)
    assert failure.value.code == 400
    assert client.contains(KEY) is False
