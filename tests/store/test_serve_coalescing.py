"""Two real ``repro serve`` processes sharing one result store.

The acceptance shape of cross-*process* coalescing: two independent
``python -m repro serve`` subprocesses (separate Sessions, separate
heaps) pointed at the same ``sqlite://`` store receive the identical
request at the same time.  Exactly one of them simulates; both answer
with byte-identical reports; ``GET /store/stats`` on each side proves
it (the cells were stored once, and no duplicate put ever landed).
"""

import json
import os
import signal
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
WORKLOADS = ["micro_addi_chain", "micro_call_spill"]

REQUEST = {"experiment": "fig8", "suite": "micro", "workloads": WORKLOADS,
           "scale": 1, "params": {}}

#: fig8 over two workloads: 2 workloads x 2 machines x 2 RENO configs.
EXPECTED_CELLS = 8


def call(base, path, payload=None, timeout=300.0):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode() if payload is not None else None,
        headers={"Content-Type": "application/json"},
        method="POST" if payload is not None else "GET")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


@pytest.fixture
def servers(tmp_path):
    """Two `repro serve` subprocesses over one sqlite:// store locator."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop("REPRO_CACHE_DIR", None)
    locator = f"sqlite://{tmp_path / 'store.sqlite3'}"
    procs, bases = [], []
    try:
        for _ in range(2):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--port", "0",
                 "--jobs", "1", "--store", locator],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
                text=True)
            procs.append(proc)
            line = proc.stdout.readline()
            assert "listening on " in line, line
            bases.append(line.rsplit(" ", 1)[-1].strip())
        yield bases
    finally:
        outputs = []
        for proc in procs:
            proc.send_signal(signal.SIGTERM)
        for proc in procs:
            try:
                output, _ = proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                output, _ = proc.communicate()
            outputs.append(output)
        assert all("shut down cleanly" in output for output in outputs), \
            "\n---\n".join(outputs)


def test_two_serve_processes_coalesce_through_the_store(servers):
    # Race the identical request into both servers at once.
    submissions: dict[int, dict] = {}

    def submit(index: int) -> None:
        submissions[index] = call(servers[index], "/experiments", REQUEST)

    threads = [threading.Thread(target=submit, args=(index,))
               for index in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert set(submissions) == {0, 1}

    reports = []
    for index, base in enumerate(servers):
        job_id = submissions[index]["job_id"]
        status = call(base, f"/jobs/{job_id}?wait=300")
        assert status["state"] == "succeeded", status
        reports.append(json.dumps(status["report"], sort_keys=True))
    assert reports[0] == reports[1]            # byte-identical, not just equal

    # Exactly one simulation across both processes: every cell stored
    # once, zero duplicate puts racing in behind the winner.
    stats = [call(base, "/store/stats") for base in servers]
    assert sum(s["stores"] for s in stats) == EXPECTED_CELLS
    assert sum(s["duplicate_puts"] for s in stats) == 0
    assert all(s["entries"] == EXPECTED_CELLS for s in stats)
