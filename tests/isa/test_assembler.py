"""Unit tests for the assembler DSL and Program container."""

import pytest

from repro.isa.assembler import Assembler, AssemblyError
from repro.isa.opcodes import Opcode
from repro.isa.program import CODE_BASE, DATA_BASE, Program
from repro.isa.registers import RegisterNames as R
from repro.isa.registers import ZERO_REG


def test_simple_program_assembles():
    asm = Assembler("simple")
    asm.li(R.T0, 5)
    asm.addi(R.T0, R.T0, 1)
    asm.halt()
    program = asm.assemble()
    assert isinstance(program, Program)
    assert len(program) == 3
    assert program.instructions[0].opcode is Opcode.ADDI
    assert program.instructions[0].rs1 == ZERO_REG


def test_labels_resolve_to_instruction_indices():
    asm = Assembler("loop")
    asm.li(R.T0, 3)
    asm.label("top")
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "top")
    asm.halt()
    program = asm.assemble()
    branch = program.instructions[2]
    assert branch.opcode is Opcode.BGT
    assert branch.target == 1  # index of the subi at label "top"


def test_unknown_label_raises():
    asm = Assembler("bad")
    asm.br("nowhere")
    asm.halt()
    with pytest.raises(AssemblyError):
        asm.assemble()


def test_duplicate_label_raises():
    asm = Assembler("dup")
    asm.label("x")
    with pytest.raises(AssemblyError):
        asm.label("x")


def test_empty_program_raises():
    with pytest.raises(AssemblyError):
        Assembler("empty").assemble()


def test_immediate_range_is_enforced():
    asm = Assembler("imm")
    asm.addi(R.T0, R.T1, 32767)
    asm.subi(R.T0, R.T1, -32768)
    with pytest.raises(AssemblyError):
        asm.addi(R.T0, R.T1, 40000)
    with pytest.raises(AssemblyError):
        asm.ld(R.T0, 1 << 20, R.T1)


def test_li_small_constant_is_single_addi_from_zero():
    asm = Assembler("li")
    asm.li(R.T0, 100)
    asm.halt()
    program = asm.assemble()
    assert len(program) == 2
    assert program.instructions[0].opcode is Opcode.ADDI
    assert program.instructions[0].rs1 == ZERO_REG
    assert program.instructions[0].imm == 100


def test_li_large_constant_uses_ldah_pair():
    asm = Assembler("li_big")
    asm.li(R.T0, 0x12345678)
    asm.halt()
    program = asm.assemble()
    opcodes = [i.opcode for i in program.instructions]
    assert Opcode.LDAH in opcodes
    # ldah high + addi low reconstruct the constant (checked in functional tests).
    assert opcodes[0] is Opcode.LDAH


def test_li_rejects_constants_wider_than_32_bits():
    asm = Assembler("li_too_big")
    with pytest.raises(AssemblyError):
        asm.li(R.T0, 1 << 40)


def test_word_array_initialises_memory_little_endian():
    asm = Assembler("data")
    address = asm.word_array("values", [1, 0x0102030405060708])
    asm.halt()
    program = asm.assemble()
    assert address == DATA_BASE
    assert program.symbols["values"] == address
    assert program.initial_memory[address] == 1
    assert program.initial_memory[address + 8] == 0x08
    assert program.initial_memory[address + 15] == 0x01


def test_byte_array_and_alignment():
    asm = Assembler("bytes")
    first = asm.byte_array("text", b"abc")
    second = asm.word_array("words", [7])
    assert first == DATA_BASE
    assert second % 8 == 0
    assert second >= first + 3


def test_duplicate_symbol_raises():
    asm = Assembler("dupdata")
    asm.word_array("x", [1])
    with pytest.raises(AssemblyError):
        asm.word_array("x", [2])


def test_unknown_symbol_raises():
    asm = Assembler("nosym")
    with pytest.raises(AssemblyError):
        asm.la(R.T0, "missing")


def test_prologue_epilogue_shape():
    asm = Assembler("frame")
    asm.label("func")
    asm.prologue(32, (R.S0, R.S1))
    asm.epilogue(32, (R.S0, R.S1))
    asm.halt()
    program = asm.assemble()
    opcodes = [i.opcode for i in program.instructions]
    # subi sp / st ra / st s0 / st s1 ... ld s0 / ld s1 / ld ra / addi sp / ret
    assert opcodes[0] is Opcode.SUBI
    assert opcodes[1] is Opcode.ST
    assert opcodes.count(Opcode.ST) == 3
    assert opcodes.count(Opcode.LD) == 3
    assert Opcode.RET in opcodes


def test_pc_index_round_trip():
    asm = Assembler("pcs")
    asm.nop()
    asm.nop()
    asm.halt()
    program = asm.assemble()
    for index in range(len(program)):
        assert program.index_of(program.pc_of(index)) == index
    assert program.pc_of(0) == CODE_BASE


def test_disassemble_contains_labels_and_opcodes():
    asm = Assembler("dis")
    asm.label("entry")
    asm.addi(R.T0, R.ZERO, 1)
    asm.halt()
    listing = asm.assemble().disassemble()
    assert "entry:" in listing
    assert "addi" in listing


def test_static_mix_counts_classes():
    asm = Assembler("mix")
    asm.addi(R.T0, R.ZERO, 1)
    asm.ld(R.T1, 0, R.SP)
    asm.st(R.T1, 8, R.SP)
    asm.beq(R.T0, "end")
    asm.label("end")
    asm.halt()
    mix = asm.assemble().static_mix()
    assert mix["alu"] == 1
    assert mix["load"] == 1
    assert mix["store"] == 1
    assert mix["branch"] == 1
    assert mix["halt"] == 1
