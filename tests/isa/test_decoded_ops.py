"""Property tests for the decoded-op cache.

The pipeline's hot loops never touch ``Instruction``/``OpSpec`` objects; they
run entirely off the immutable decoded tuples
(:func:`repro.isa.instruction.decode_op`).  These tests pin that cache down
from two directions:

* **Field fidelity** — for every opcode, each decoded field equals the value
  derived from the ``Instruction``/``OpSpec`` source of truth.
* **Architectural round-trip** — on seeded random programs, re-evaluating
  every dynamic instruction *from its decoded tuple alone* (plus the traced
  operand values) reproduces the architectural results, effective
  addresses, store values and branch directions the functional simulator
  computed by executing the ``Instruction`` objects directly.  This is the
  property the structure-of-arrays pipeline relies on.
"""

import random

import pytest

from repro.functional.simulator import FunctionalSimulator
from repro.isa.instruction import (
    CLASS_INT,
    CLASS_LOAD,
    CLASS_STORE,
    D_CLASS,
    D_DEST,
    D_FLAGS,
    D_FOLDED_DISP,
    D_IMM,
    D_LATENCY,
    D_MEM_BYTES,
    D_MEM_MASK,
    D_OPCODE,
    D_SOURCES,
    DF_CALL,
    DF_COND_BRANCH,
    DF_CONTROL,
    DF_IT_ALU,
    DF_LOAD,
    DF_MEM_SIGNED,
    DF_MOVE,
    DF_NO_EXECUTE,
    DF_REG_IMM_ADD,
    DF_STORE,
    DF_WRITES,
    Instruction,
    decode_op,
    decode_program,
)
from repro.isa.opcodes import OPCODE_SPECS, OpClass, Opcode
from repro.isa.semantics import MASK64, alu_eval, branch_taken, mask64
from tests.uarch.test_scheduler_equivalence import random_program

#: Seeds for the round-trip property (kept cheap: three programs).
SEEDS = [11, 101, 4099]


def representative(opcode: Opcode) -> Instruction:
    """A syntactically sensible instruction for ``opcode``."""
    spec = OPCODE_SPECS[opcode]
    kwargs = {}
    if spec.writes_rd:
        kwargs["rd"] = 5
    if spec.reads_rs1:
        kwargs["rs1"] = 6
    if spec.reads_rs2:
        kwargs["rs2"] = 7
    if spec.fmt in ("ri", "load", "store"):
        kwargs["imm"] = 24
    if spec.is_control and spec.fmt != "ret":
        kwargs["target"] = 0
    return Instruction(opcode, **kwargs)


@pytest.mark.parametrize("opcode", list(OPCODE_SPECS))
def test_decoded_fields_match_the_spec(opcode):
    instruction = representative(opcode)
    spec = instruction.spec
    op = decode_op(instruction)

    flags = op[D_FLAGS]
    assert bool(flags & DF_LOAD) == spec.is_load
    assert bool(flags & DF_STORE) == spec.is_store
    assert bool(flags & DF_COND_BRANCH) == spec.is_cond_branch
    assert bool(flags & DF_CONTROL) == spec.is_control
    assert bool(flags & DF_CALL) == spec.is_call
    assert bool(flags & DF_WRITES) == (instruction.dest_register is not None)
    assert bool(flags & DF_NO_EXECUTE) == (
        spec.op_class in (OpClass.NOP, OpClass.HALT))
    assert bool(flags & DF_MEM_SIGNED) == spec.mem_signed
    assert bool(flags & DF_MOVE) == spec.is_move
    assert bool(flags & DF_REG_IMM_ADD) == spec.is_reg_imm_add
    assert bool(flags & DF_IT_ALU) == (
        spec.op_class in (OpClass.ALU, OpClass.SHIFT))

    if spec.is_load:
        assert op[D_CLASS] == CLASS_LOAD
    elif spec.is_store:
        assert op[D_CLASS] == CLASS_STORE
    else:
        assert op[D_CLASS] == CLASS_INT
    assert op[D_LATENCY] == spec.latency
    assert op[D_MEM_BYTES] == spec.mem_bytes
    dest = instruction.dest_register
    assert op[D_DEST] == (-1 if dest is None else dest)
    assert op[D_IMM] == instruction.imm
    assert op[D_OPCODE] is opcode
    assert op[D_FOLDED_DISP] == instruction.folded_displacement
    expected_mask = (1 << (8 * spec.mem_bytes)) - 1 if spec.mem_bytes else 0
    assert op[D_MEM_MASK] == expected_mask
    assert op[D_SOURCES] == instruction.source_registers()


def test_decode_is_memoised_per_static_instruction():
    first = Instruction(Opcode.ADDI, rd=1, rs1=2, imm=7)
    second = Instruction(Opcode.ADDI, rd=1, rs1=2, imm=7)
    assert decode_op(first) is decode_op(second)
    assert decode_op(first) is decode_op(first)


def test_decode_program_indexes_by_static_position():
    program = random_program(11, length=30).assemble()
    decoded = decode_program(program.instructions)
    assert len(decoded) == len(program.instructions)
    for index, instruction in enumerate(program.instructions):
        assert decoded[index] is decode_op(instruction)


@pytest.mark.parametrize("seed", SEEDS)
def test_decoded_tuples_round_trip_architectural_behaviour(seed):
    """Re-executing the trace from decoded tuples reproduces the trace.

    For every dynamic instruction, the result / effective address / store
    value / branch direction is recomputed using **only** the decoded tuple
    and the traced operand values, and compared against what the functional
    simulator produced by executing the ``Instruction`` objects directly.
    """
    program = random_program(seed).assemble()
    run = FunctionalSimulator(program).run()
    decoded = decode_program(program.instructions)
    checked = 0

    for dyn in run.trace:
        op = decoded[dyn.index]
        flags = op[D_FLAGS]
        if flags & DF_NO_EXECUTE:
            continue
        if flags & DF_COND_BRANCH:
            assert branch_taken(op[D_OPCODE], dyn.rs1_value) == dyn.taken
        elif flags & DF_LOAD:
            assert mask64(dyn.rs1_value + op[D_IMM]) == dyn.eff_addr
        elif flags & DF_STORE:
            assert mask64(dyn.rs1_value + op[D_IMM]) == dyn.eff_addr
            assert dyn.store_value & op[D_MEM_MASK] == \
                dyn.store_value & ((1 << (8 * op[D_MEM_BYTES])) - 1)
        elif flags & DF_CALL:
            assert dyn.result == (dyn.pc + 4) & MASK64
        elif op[D_CLASS] == CLASS_INT and not (flags & DF_CONTROL) \
                and dyn.result is not None:
            value = alu_eval(op[D_OPCODE], dyn.rs1_value, dyn.rs2_value,
                             op[D_IMM])
            assert value == dyn.result
        else:
            continue
        checked += 1

    assert checked > 100, "expected the trace to exercise every class"


@pytest.mark.parametrize("seed", SEEDS)
def test_pipeline_on_decoded_ops_matches_functional_state(seed):
    """The SoA pipeline (driven entirely by decoded tuples) must finish with
    the same architectural register state the functional simulator computed
    by executing ``Instruction`` objects."""
    from repro.isa.registers import NUM_LOGICAL_REGS
    from repro.uarch.config import MachineConfig
    from repro.uarch.core import Pipeline

    program = random_program(seed).assemble()
    run = FunctionalSimulator(program).run()
    result = Pipeline(program, run.trace, MachineConfig.default_4wide()).run()
    functional = [run.state.read(reg) for reg in range(NUM_LOGICAL_REGS)]
    assert result.final_registers == functional
