"""Unit and property tests for the shared operation semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.opcodes import Opcode
from repro.isa.semantics import (
    MASK64,
    alu_eval,
    branch_taken,
    effective_address,
    fits_signed,
    mask64,
    sign_extend,
    to_signed,
)

uint64 = st.integers(min_value=0, max_value=MASK64)
imm16 = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)


def test_mask64_wraps():
    assert mask64(1 << 64) == 0
    assert mask64(-1) == MASK64


def test_to_signed_round_trip():
    assert to_signed(MASK64) == -1
    assert to_signed(5) == 5
    assert to_signed(0x8000, 16) == -32768


def test_sign_extend():
    assert sign_extend(0xFFFF, 16) == MASK64
    assert sign_extend(0x7FFF, 16) == 0x7FFF


def test_fits_signed():
    assert fits_signed(32767, 16)
    assert fits_signed(-32768, 16)
    assert not fits_signed(32768, 16)
    assert not fits_signed(-32769, 16)


def test_basic_arithmetic():
    assert alu_eval(Opcode.ADD, 2, 3, 0) == 5
    assert alu_eval(Opcode.SUB, 2, 3, 0) == MASK64  # -1
    assert alu_eval(Opcode.ADDI, 10, 0, -4) == 6
    assert alu_eval(Opcode.SUBI, 10, 0, 4) == 6
    assert alu_eval(Opcode.MOV, 42, 0, 0) == 42
    assert alu_eval(Opcode.LDAH, 1, 0, 2) == 1 + (2 << 16)


def test_logical_and_shift():
    assert alu_eval(Opcode.AND, 0b1100, 0b1010, 0) == 0b1000
    assert alu_eval(Opcode.OR, 0b1100, 0b1010, 0) == 0b1110
    assert alu_eval(Opcode.XOR, 0b1100, 0b1010, 0) == 0b0110
    assert alu_eval(Opcode.SLLI, 1, 0, 8) == 256
    assert alu_eval(Opcode.SRLI, 256, 0, 8) == 1
    assert alu_eval(Opcode.SRAI, mask64(-256), 0, 8) == mask64(-1)


def test_compares():
    assert alu_eval(Opcode.CMPEQ, 4, 4, 0) == 1
    assert alu_eval(Opcode.CMPLT, mask64(-1), 0, 0) == 1
    assert alu_eval(Opcode.CMPULT, mask64(-1), 0, 0) == 0
    assert alu_eval(Opcode.CMPLEI, 4, 0, 4) == 1
    assert alu_eval(Opcode.CMPLTI, 4, 0, 4) == 0


def test_mul_div():
    assert alu_eval(Opcode.MUL, 7, 6, 0) == 42
    assert alu_eval(Opcode.MUL, mask64(-3), 5, 0) == mask64(-15)
    assert alu_eval(Opcode.DIV, 42, 5, 0) == 8
    assert alu_eval(Opcode.DIV, mask64(-42), 5, 0) == mask64(-8)
    assert alu_eval(Opcode.DIV, 42, 0, 0) == 0  # defined, no trap


def test_branch_directions():
    assert branch_taken(Opcode.BEQ, 0)
    assert not branch_taken(Opcode.BEQ, 1)
    assert branch_taken(Opcode.BNE, 5)
    assert branch_taken(Opcode.BLT, mask64(-2))
    assert branch_taken(Opcode.BGE, 0)
    assert branch_taken(Opcode.BLE, 0)
    assert not branch_taken(Opcode.BGT, 0)
    assert branch_taken(Opcode.BGT, 3)


def test_effective_address_wraps_to_64_bits():
    assert effective_address(MASK64, 1) == 0
    assert effective_address(0x1000, -16) == 0xFF0


# ---------------------------------------------------------------------------
# Property tests: the algebraic identities RENO_CF relies on.
# ---------------------------------------------------------------------------


@settings(max_examples=200)
@given(uint64, imm16, imm16)
def test_addi_chains_are_associative(base, d1, d2):
    """((p + d1) + d2) == (p + (d1 + d2)): the constant-folding identity."""
    step_by_step = alu_eval(Opcode.ADDI, alu_eval(Opcode.ADDI, base, 0, d1), 0, d2)
    folded = mask64(base + d1 + d2)
    assert step_by_step == folded


@settings(max_examples=200)
@given(uint64, imm16)
def test_move_is_identity_of_addi_zero(value, imm):
    assert alu_eval(Opcode.MOV, value, 0, imm) == alu_eval(Opcode.ADDI, value, 0, 0)


@settings(max_examples=200)
@given(uint64, imm16)
def test_subi_is_addi_of_negated_immediate(value, imm):
    assert alu_eval(Opcode.SUBI, value, 0, imm) == alu_eval(Opcode.ADDI, value, 0, -imm)


@settings(max_examples=200)
@given(uint64, uint64)
def test_add_matches_python_semantics(a, b):
    assert alu_eval(Opcode.ADD, a, b, 0) == (a + b) & MASK64


@settings(max_examples=200)
@given(uint64)
def test_sign_extension_is_idempotent(value):
    once = sign_extend(value & 0xFFFF, 16)
    assert sign_extend(once & 0xFFFF, 16) == once
