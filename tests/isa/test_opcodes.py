"""Unit tests for opcode metadata."""

from repro.isa.opcodes import OPCODE_SPECS, Opcode, OpClass, spec_for


def test_every_opcode_has_a_spec():
    for opcode in Opcode:
        assert opcode in OPCODE_SPECS
        assert OPCODE_SPECS[opcode].opcode is opcode


def test_spec_for_returns_same_object_as_table():
    assert spec_for(Opcode.ADD) is OPCODE_SPECS[Opcode.ADD]


def test_loads_and_stores_have_sizes():
    for opcode in (Opcode.LD, Opcode.LDW, Opcode.LDBU, Opcode.ST, Opcode.STW, Opcode.STB):
        assert OPCODE_SPECS[opcode].mem_bytes in (1, 4, 8)


def test_load_classification():
    spec = spec_for(Opcode.LD)
    assert spec.is_load and spec.is_mem and not spec.is_store
    assert spec.writes_rd and spec.reads_rs1 and not spec.reads_rs2


def test_store_classification():
    spec = spec_for(Opcode.ST)
    assert spec.is_store and spec.is_mem and not spec.is_load
    assert not spec.writes_rd and spec.reads_rs1 and spec.reads_rs2


def test_move_is_a_register_immediate_addition():
    spec = spec_for(Opcode.MOV)
    assert spec.is_move
    assert spec.is_reg_imm_add


def test_addi_and_subi_are_foldable_but_not_moves():
    for opcode in (Opcode.ADDI, Opcode.SUBI):
        spec = spec_for(opcode)
        assert spec.is_reg_imm_add
        assert not spec.is_move


def test_ldah_folds_with_shift_16():
    spec = spec_for(Opcode.LDAH)
    assert spec.is_reg_imm_add
    assert spec.fold_shift == 16


def test_non_additive_immediates_are_not_foldable():
    for opcode in (Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI, Opcode.MULI):
        assert not spec_for(opcode).is_reg_imm_add


def test_branch_specs_read_only_rs1():
    for opcode in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLE, Opcode.BGT):
        spec = spec_for(opcode)
        assert spec.is_cond_branch and spec.is_control
        assert spec.reads_rs1 and not spec.reads_rs2 and not spec.writes_rd


def test_call_and_return_classification():
    assert spec_for(Opcode.JSR).is_call
    assert spec_for(Opcode.JSR).writes_rd
    assert spec_for(Opcode.RET).is_return
    assert spec_for(Opcode.RET).reads_rs1


def test_multi_cycle_latencies():
    assert spec_for(Opcode.MUL).latency > spec_for(Opcode.ADD).latency
    assert spec_for(Opcode.DIV).latency > spec_for(Opcode.MUL).latency


def test_shift_class_is_distinct_from_alu():
    assert spec_for(Opcode.SLL).op_class is OpClass.SHIFT
    assert spec_for(Opcode.ADD).op_class is OpClass.ALU
