"""Wire-schema compatibility tests for the fleet messages.

Mirrors ``tests/api/test_session.py`` style: round-trips for the additive
version-2 messages (``WorkerHello`` / ``TaskLease`` / ``TaskResult``),
malformed-payload rejection, and the two directions of version
negotiation — an *older* worker gets a structured HTTP 426 rejection, a
*newer* one is refused by the existing newer-than-us ``SchemaError``
policy (HTTP 400).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api.fleet import FleetBroker, WorkerRejected, make_fleet_server
from repro.api.schema import (
    WIRE_SCHEMA_VERSION,
    SchemaError,
    TaskLease,
    TaskResult,
    WorkerHello,
)

# ---------------------------------------------------------------------------
# Round-trips
# ---------------------------------------------------------------------------


def test_worker_hello_roundtrip():
    hello = WorkerHello(worker_id="w-7", pid=4242, host="node3")
    clone = WorkerHello.from_dict(hello.to_dict())
    assert clone == hello
    assert clone.schema_version == WIRE_SCHEMA_VERSION


def test_task_lease_roundtrip():
    lease = TaskLease(
        lease_id="lease-000042", job_tag="grid-1-7",
        cell={"workload": "micro_addi_chain", "scale": 1,
              "outcome_key": "abc123", "cache_root": "/tmp/c"},
        attempt=3, lease_ttl_s=2.5, heartbeat_every_s=0.5)
    assert TaskLease.from_dict(lease.to_dict()) == lease


def test_task_result_roundtrip():
    ok = TaskResult(lease_id="lease-000001", worker_id="w1", ok=True,
                    outcome_key="deadbeef", cached=True)
    assert TaskResult.from_dict(ok.to_dict()) == ok
    failed = TaskResult(lease_id="lease-000002", worker_id="w1", ok=False,
                        error="ValueError: boom")
    assert TaskResult.from_dict(failed.to_dict()) == failed


@pytest.mark.parametrize("factory,payload", [
    (WorkerHello.from_dict, {"schema_version": WIRE_SCHEMA_VERSION}),
    (WorkerHello.from_dict, {"schema_version": WIRE_SCHEMA_VERSION,
                             "worker_id": ""}),
    (WorkerHello.from_dict, "not-an-object"),
    (TaskLease.from_dict, {"schema_version": WIRE_SCHEMA_VERSION,
                           "lease_id": "x", "cell": "not-a-dict"}),
    (TaskLease.from_dict, {"schema_version": WIRE_SCHEMA_VERSION,
                           "lease_id": "", "cell": {}}),
    (TaskResult.from_dict, {"schema_version": WIRE_SCHEMA_VERSION,
                            "lease_id": "x", "ok": "yes"}),
    (TaskResult.from_dict, {"schema_version": WIRE_SCHEMA_VERSION,
                            "lease_id": "", "ok": True}),
])
def test_malformed_fleet_messages_are_rejected(factory, payload):
    with pytest.raises(SchemaError):
        factory(payload)


def test_newer_than_us_messages_follow_schema_error_policy():
    # The standard policy for every wire message: a payload stamped with a
    # future schema version is refused loudly rather than half-parsed.
    for factory in (WorkerHello.from_dict, TaskLease.from_dict,
                    TaskResult.from_dict):
        with pytest.raises(SchemaError, match="wire schema"):
            factory({"schema_version": WIRE_SCHEMA_VERSION + 1,
                     "worker_id": "w", "lease_id": "l", "cell": {},
                     "ok": True})


# ---------------------------------------------------------------------------
# Negotiation (broker level)
# ---------------------------------------------------------------------------


def test_broker_rejects_older_worker_with_structured_error():
    broker = FleetBroker()
    old = WorkerHello(worker_id="vintage", schema_version=WIRE_SCHEMA_VERSION - 1)
    with pytest.raises(WorkerRejected) as excinfo:
        broker.register(old)
    payload = excinfo.value.payload
    assert payload["supported_version"] == WIRE_SCHEMA_VERSION
    assert payload["advertised_version"] == WIRE_SCHEMA_VERSION - 1
    assert "upgrade the worker" in payload["error"]
    assert broker.worker_count() == 0


def test_broker_accepts_current_version_worker():
    broker = FleetBroker(lease_ttl_s=7.0)
    answer = broker.register(WorkerHello(worker_id="modern"))
    assert answer["ok"] is True
    assert answer["lease_ttl_s"] == 7.0
    assert broker.worker_count() == 1


# ---------------------------------------------------------------------------
# Negotiation (HTTP level)
# ---------------------------------------------------------------------------


@pytest.fixture()
def fleet_server():
    server = make_fleet_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def _post(server, path, payload):
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        server.url + path, data=body,
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_http_hello_negotiation(fleet_server):
    # Older worker: structured 426 with both version numbers.
    code, body = _post(fleet_server, "/fleet/hello", {
        "schema_version": WIRE_SCHEMA_VERSION - 1, "worker_id": "old"})
    assert code == 426
    assert body["supported_version"] == WIRE_SCHEMA_VERSION
    assert body["advertised_version"] == WIRE_SCHEMA_VERSION - 1

    # Newer worker: the SchemaError policy surfaces as a 400.
    code, body = _post(fleet_server, "/fleet/hello", {
        "schema_version": WIRE_SCHEMA_VERSION + 1, "worker_id": "future"})
    assert code == 400
    assert "wire schema" in body["error"]

    # Current version: registered, policy knobs in the answer.
    code, body = _post(fleet_server, "/fleet/hello", {
        "schema_version": WIRE_SCHEMA_VERSION, "worker_id": "current"})
    assert code == 200
    assert body["ok"] is True
    assert body["heartbeat_every_s"] > 0


def test_http_lease_without_hello_is_a_409(fleet_server):
    code, body = _post(fleet_server, "/fleet/lease",
                       {"worker_id": "stranger", "wait": 0})
    assert code == 409
    assert "hello" in body["error"]


def test_http_stats_lists_registered_workers(fleet_server):
    _post(fleet_server, "/fleet/hello",
          {"schema_version": WIRE_SCHEMA_VERSION, "worker_id": "w-stats",
           "pid": 123})
    with urllib.request.urlopen(fleet_server.url + "/fleet/stats",
                                timeout=30) as response:
        stats = json.loads(response.read())
    assert "w-stats" in stats["workers"]
    assert stats["workers"]["w-stats"]["pid"] == 123
    assert stats["counters"]["commits"] == 0
