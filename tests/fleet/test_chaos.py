"""Fault-injection tests: the fleet under SIGKILL, SIGSTOP and desync.

The headline property, from the paper-repro angle: **chaos must not change
the numbers**.  Whatever happens to individual workers mid-grid — killed,
stalled, wrong schema version — the terminal report must be byte-identical
to :class:`~repro.harness.executors.SerialExecutor`'s, and every cell must
commit exactly once.
"""

import random
import threading
import time

import pytest

from repro.api import worker as worker_mod
from repro.api.schema import WIRE_SCHEMA_VERSION, ExperimentRequest, TaskLease
from repro.api.session import JobCancelled, Session
from repro.api.worker import FleetWorker
from repro.core.simulator import simulate
from repro.harness.cache import SimulationCache, outcome_key, program_digest
from repro.uarch.config import MachineConfig
from repro.workloads.base import get_workload

from harness import (
    CHAOS_WORKLOADS,
    FleetHarness,
    fleet_report,
    report_json,
    serial_report,
)


def test_sigkill_chaos_converges_byte_identical(tmp_path):
    """Kill a random worker every second commit; the report must not care."""
    reference = serial_report(CHAOS_WORKLOADS)
    rng = random.Random(0x5EED)
    seen = []

    with FleetHarness(tmp_path / "cache") as harness:
        for _ in range(2):
            harness.spawn_worker()

        def on_progress(grid_key, cached):
            seen.append(grid_key)
            if len(seen) % 2 == 0:
                live = harness.live_workers()
                if live:
                    harness.kill_worker(rng.choice(live))
                    harness.spawn_worker()

        report = fleet_report(harness.executor, CHAOS_WORKLOADS,
                              cache=harness.cache_root, progress=on_progress)
        counters = dict(harness.broker.counters)

    assert report_json(report) == report_json(reference)
    # Exactly-once commit under chaos: 8 cells, 8 commits, 8 progress
    # events, no grid key seen twice, no cell failed out.
    assert counters["commits"] == 8
    assert counters["failures"] == 0
    assert len(seen) == 8
    assert len(set(seen)) == 8


def test_stalled_worker_leases_migrate_to_a_fresh_worker(tmp_path):
    """SIGSTOP the only worker mid-cell; a newcomer finishes the grid."""
    reference = serial_report(CHAOS_WORKLOADS, scale=2)
    with FleetHarness(tmp_path / "cache") as harness:
        first = harness.spawn_worker()
        box = {}

        def run():
            box["report"] = fleet_report(harness.executor, CHAOS_WORKLOADS,
                                         cache=harness.cache_root, scale=2)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if harness.broker.stats()["leased"] >= 1:
                break
            time.sleep(0.02)
        else:
            pytest.fail("first worker never leased a cell")
        harness.stall_worker(first)      # alive but silent: lease expires
        harness.spawn_worker()
        thread.join(timeout=120.0)
        assert not thread.is_alive(), "grid did not converge after the stall"
        counters = dict(harness.broker.counters)

    assert report_json(box["report"]) == report_json(reference)
    assert counters["retries"] >= 1      # the stalled lease was reassigned
    assert counters["commits"] == 8      # still exactly once per cell


def test_desynced_worker_hello_mid_grid_is_rejected_cleanly(tmp_path):
    """An old-schema worker arriving mid-grid gets a 426, the grid a report."""
    reference = serial_report(["micro_addi_chain"])
    responses = []
    with FleetHarness(tmp_path / "cache") as harness:
        harness.spawn_worker()

        def on_progress(grid_key, cached):
            if not responses:
                responses.append(
                    harness.hello("vintage", WIRE_SCHEMA_VERSION - 1))

        report = fleet_report(harness.executor, ["micro_addi_chain"],
                              cache=harness.cache_root, progress=on_progress)
        worker_count = harness.broker.worker_count()

    code, body = responses[0]
    assert code == 426
    assert body["supported_version"] == WIRE_SCHEMA_VERSION
    assert body["advertised_version"] == WIRE_SCHEMA_VERSION - 1
    assert worker_count == 1             # the desynced worker never joined
    assert report_json(report) == report_json(reference)


def test_checkpoint_migrates_between_workers(tmp_path):
    """An abandoning worker parks a checkpoint; its successor resumes it."""
    name = "micro_addi_chain"
    program = get_workload(name).build(1)
    machine = MachineConfig()
    reference = simulate(program, machine, None, collect_timing=True)
    assert reference.timing.cycles >= 8  # multi-slice at the chosen budget
    slice_cycles = max(1, reference.timing.cycles // 4)

    cache_root = tmp_path / "cache"
    checkpoint = tmp_path / "ckpt" / "cell.ckpt"
    key = outcome_key(program_digest(program), machine, None,
                      2_000_000, True, False)
    cell = {
        "workload": name, "scale": 1,
        "machine_label": "m", "machine": machine.to_dict(),
        "reno_label": "r", "reno": None,
        "collect_timing": True, "record_stats": False,
        "max_instructions": 2_000_000,
        "outcome_key": key,
        "cache_root": str(cache_root),
        "checkpoint_path": str(checkpoint),
        "slice_cycles": slice_cycles,
    }

    # Worker A is told to abandon before its first slice boundary: it must
    # stop, leave the checkpoint on disk, and post nothing.
    worker_a = FleetWorker("http://127.0.0.1:1", worker_id="wa")
    abandon = threading.Event()
    abandon.set()
    lease_a = TaskLease(lease_id="lease-a", job_tag="migrate", cell=cell,
                        lease_ttl_s=30.0, heartbeat_every_s=30.0)
    with pytest.raises(worker_mod._Abandoned):
        worker_a._run_cell(lease_a, abandon)
    assert checkpoint.exists()

    # Worker B picks the requeued cell up mid-simulation and finishes it
    # with results byte-identical to the uninterrupted run.
    worker_b = FleetWorker("http://127.0.0.1:1", worker_id="wb")
    lease_b = TaskLease(lease_id="lease-b", job_tag="migrate", cell=cell,
                        lease_ttl_s=30.0, heartbeat_every_s=30.0)
    result = worker_b._run_cell(lease_b, threading.Event())
    assert result.ok and not result.cached
    assert result.outcome_key == key
    assert not checkpoint.exists()       # consumed on completion

    outcome = SimulationCache(cache_root).get(key)
    assert outcome is not None
    assert outcome.timing.cycles == reference.timing.cycles
    assert outcome.timing.final_registers == reference.timing.final_registers


def test_cancel_mid_grid_drops_queued_cells(tmp_path):
    """Cancelling a fleet job empties the broker queue, not just the flag."""
    with FleetHarness(tmp_path / "cache") as harness:
        harness.spawn_worker()
        session = Session(executor=harness.executor,
                          cache=str(harness.cache_root))
        try:
            def watcher(job, grid_key, cached):
                job.cancel()             # cancel at the first commit

            job = session.submit(
                ExperimentRequest("fig8", suite="micro",
                                  workloads=CHAOS_WORKLOADS),
                on_progress=watcher)
            with pytest.raises(JobCancelled):
                job.result(timeout=120.0)
            stats = harness.broker.stats()
            assert stats["queued"] == 0
            assert harness.broker.counters["cancelled_cells"] >= 1
        finally:
            session.close()
