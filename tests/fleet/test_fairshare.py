"""Fair-share scheduling and backpressure, broker-level and end-to-end.

The broker must round-robin leases across concurrently submitted jobs
(a small grid is never starved behind a big one), and a submission that
would overflow the queue-depth cap must be refused with the structured
429 at the HTTP edge instead of growing memory without bound.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api.fleet import FleetBroker, FleetExecutor, FleetSaturated
from repro.api.schema import ExperimentRequest, TaskResult, WorkerHello
from repro.api.service import make_server
from repro.api.session import Session

from harness import fleet_report, report_json, serial_report


def cells(tag, n):
    return [((f"{tag}-{i}", "m", "r"), {"outcome_key": f"key-{tag}-{i}"})
            for i in range(n)]


# ---------------------------------------------------------------------------
# Fair share (broker level)
# ---------------------------------------------------------------------------


def test_leases_round_robin_across_concurrent_jobs():
    broker = FleetBroker()
    broker.register(WorkerHello(worker_id="w"))
    broker.submit_cells("big", cells("big", 6))
    broker.submit_cells("small", cells("small", 2))
    order = []
    for _ in range(8):
        lease = broker.lease("w")
        order.append(lease.job_tag)
        broker.complete(TaskResult(lease_id=lease.lease_id, worker_id="w",
                                   ok=True,
                                   outcome_key=lease.cell["outcome_key"]))
    # While both jobs have work the grants alternate; the small job is
    # done after four grants even though the big one was submitted first.
    assert order[:4] == ["big", "small", "big", "small"]
    assert order[4:] == ["big"] * 4
    _, small_done, _ = broker.wait_job("small", timeout=0)
    assert small_done


def test_both_jobs_make_monotonic_progress():
    broker = FleetBroker()
    broker.register(WorkerHello(worker_id="w"))
    broker.submit_cells("a", cells("a", 4))
    broker.submit_cells("b", cells("b", 4))
    remaining = {"a": [], "b": []}
    for _ in range(8):
        lease = broker.lease("w")
        broker.complete(TaskResult(lease_id=lease.lease_id, worker_id="w",
                                   ok=True,
                                   outcome_key=lease.cell["outcome_key"]))
        stats = broker.stats()
        for tag in ("a", "b"):
            remaining[tag].append(stats["jobs"][tag]["remaining"])
    for tag in ("a", "b"):
        # Strictly monotonic progress overall, never stuck at the start.
        assert remaining[tag] == sorted(remaining[tag], reverse=True)
        assert remaining[tag][-1] == 0
        assert remaining[tag][3] < 4     # progressed within the first half


# ---------------------------------------------------------------------------
# Backpressure at the session / HTTP edge
# ---------------------------------------------------------------------------


def small_body(workloads=("micro_addi_chain",)):
    return {"experiment": "fig8", "suite": "micro",
            "workloads": list(workloads), "scale": 1, "params": {}}


def test_session_submit_past_cap_raises_fleet_saturated(tmp_path):
    # A fig8 micro request is 4 cells; a 2-cell cap must refuse it at
    # admission time, before any job (or fleet traffic) is created.
    fleet = FleetExecutor(workers=0, respawn=False, max_queue_depth=2)
    with fleet, Session(executor=fleet, cache=tmp_path / "cache") as session:
        with pytest.raises(FleetSaturated) as excinfo:
            session.submit(ExperimentRequest(**{
                k: v for k, v in small_body().items()}))
        assert excinfo.value.max_queue_depth == 2
        assert session.jobs() == []      # nothing half-created


def test_http_submit_past_cap_gets_structured_429(tmp_path):
    fleet = FleetExecutor(workers=0, respawn=False, max_queue_depth=2)
    session = Session(executor=fleet, cache=tmp_path / "cache")
    server = make_server(port=0, session=session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        body = json.dumps(small_body()).encode()
        request = urllib.request.Request(
            f"http://{host}:{port}/experiments", data=body,
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 429
        payload = json.loads(excinfo.value.read())
        assert payload["max_queue_depth"] == 2
        assert payload["retry_after_s"] > 0
        assert "saturated" in payload["error"]
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        session.close()


# ---------------------------------------------------------------------------
# End-to-end: two concurrent submissions share one fleet
# ---------------------------------------------------------------------------


def test_two_concurrent_submissions_share_the_fleet(tmp_path):
    reference = {
        "big": serial_report(["micro_addi_chain", "micro_call_spill"]),
        "small": serial_report(["micro_store_load"]),
    }
    with FleetExecutor(workers=2, cache=tmp_path / "cache") as fleet:
        with Session(executor=fleet, cache=tmp_path / "cache",
                     workers=2) as session:
            big = session.submit(ExperimentRequest(
                "fig8", suite="micro",
                workloads=["micro_addi_chain", "micro_call_spill"]))
            small = session.submit(ExperimentRequest(
                "fig8", suite="micro", workloads=["micro_store_load"]))
            big_report = big.result(timeout=300)
            small_report = small.result(timeout=300)
    assert report_json(big_report) == report_json(reference["big"])
    assert report_json(small_report) == report_json(reference["small"])


def test_fleet_report_matches_serial_byte_for_byte(tmp_path):
    # The acceptance-criterion shape, fleet-executor edition: the full
    # fig8 micro-subset grid across two worker processes, compared to the
    # serial ground truth as canonical JSON.
    workloads = ["micro_addi_chain", "micro_store_load"]
    reference = serial_report(workloads)
    with FleetExecutor(workers=2, cache=tmp_path / "cache") as fleet:
        report = fleet_report(fleet, workloads, cache=tmp_path / "cache")
        counters = fleet.broker.stats()["counters"]
    assert report_json(report) == report_json(reference)
    assert counters["commits"] == 8      # 2 workloads x 2 machines x 2 renos
    assert counters["late_results"] == 0
