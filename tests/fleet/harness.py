"""The in-repo chaos harness for the distributed worker fleet.

:class:`FleetHarness` wraps a :class:`~repro.api.fleet.FleetExecutor` in
*manual population control* (``workers=0, respawn=False``): tests spawn,
SIGKILL, SIGSTOP/SIGCONT and schema-desync worker processes explicitly
while a grid is in flight, then assert the terminal report is
byte-identical to :class:`~repro.harness.executors.SerialExecutor`'s.

The harness keeps chaos *observable*: the broker's counters (commits,
retries, late results) are reachable via :attr:`broker`, so tests can
assert exactly-once commit semantics — every cell committed once, no cell
lost, no cell doubled — and not just end-state equality.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import urllib.error
import urllib.request
from pathlib import Path

from repro.api.fleet import FleetExecutor
from repro.harness.spec import run_experiment

#: The tiny fig8 grid the fleet tests run: 2 workloads × 2 machines ×
#: 2 RENO configs = 8 cells, each fast enough for CI.
CHAOS_WORKLOADS = ["micro_addi_chain", "micro_call_spill"]


def report_json(report) -> str:
    """Canonical JSON of a report (the byte-identity comparison form)."""
    return json.dumps(report.to_dict(), sort_keys=True)


def serial_report(workloads, *, scale: int = 1):
    """The ground truth: the same grid through ``SerialExecutor``, no cache."""
    return run_experiment("fig8", suite="micro", workloads=list(workloads),
                          scale=scale, jobs=1, cache=False)


def fleet_report(executor, workloads, *, cache, scale: int = 1,
                 progress=None, cancel=None):
    """The same grid through a fleet executor (shared cache required)."""
    return run_experiment("fig8", suite="micro", workloads=list(workloads),
                          scale=scale, executor=executor, cache=str(cache),
                          progress=progress, cancel=cancel)


class FleetHarness:
    """Boot a broker with manual worker population control (see module doc).

    Args:
        cache_root: Shared outcome-cache directory for broker and workers.
        lease_ttl_s: Lease TTL — short, so killed/stalled workers' cells
            requeue within test timescales.
        slice_cycles: Worker checkpoint granularity — small, so dying
            workers leave mid-cell checkpoints for their successors.
        max_attempts: Per-cell retry budget (generous: chaos tests kill
            workers repeatedly and every retry must stay free to run).
        stall_timeout_s: Executor-level dead-fleet guard.
    """

    def __init__(
        self,
        cache_root: str | Path,
        *,
        lease_ttl_s: float = 1.0,
        slice_cycles: int = 1500,
        max_attempts: int = 8,
        stall_timeout_s: float = 120.0,
    ):
        """Create the harness and boot its broker (no workers yet)."""
        self.cache_root = Path(cache_root)
        self.executor = FleetExecutor(
            workers=0,
            respawn=False,
            cache=self.cache_root,
            lease_ttl_s=lease_ttl_s,
            max_attempts=max_attempts,
            slice_cycles=slice_cycles,
            stall_timeout_s=stall_timeout_s,
        )
        self.url = self.executor.ensure_started()
        self._stopped: set[int] = set()

    # ------------------------------------------------------------------
    # Population control
    # ------------------------------------------------------------------

    @property
    def broker(self):
        """The underlying :class:`~repro.api.fleet.FleetBroker`."""
        return self.executor.broker

    def live_workers(self) -> list[subprocess.Popen]:
        """The worker processes currently alive (stalled ones included)."""
        return [p for p in self.executor.processes if p.poll() is None]

    def spawn_worker(self) -> subprocess.Popen:
        """Start one fresh worker subprocess against the broker."""
        return self.executor.spawn_worker()

    def kill_worker(self, process: subprocess.Popen) -> None:
        """SIGKILL a worker mid-whatever and reap it (no cleanup runs)."""
        process.kill()
        process.wait()

    def stall_worker(self, process: subprocess.Popen) -> None:
        """SIGSTOP a worker: alive but silent, so its leases expire."""
        os.kill(process.pid, signal.SIGSTOP)
        self._stopped.add(process.pid)

    def resume_worker(self, process: subprocess.Popen) -> None:
        """SIGCONT a previously stalled worker."""
        os.kill(process.pid, signal.SIGCONT)
        self._stopped.discard(process.pid)

    def hello(self, worker_id: str, schema_version: int) -> tuple[int, dict]:
        """Post a raw (possibly desynced) hello; return (HTTP code, body).

        This is how tests desync a worker mid-grid: a crafted
        ``schema_version`` exercises the broker's negotiation without
        patching the real worker binary.
        """
        body = json.dumps({
            "schema_version": schema_version,
            "worker_id": worker_id,
            "pid": 0,
            "host": "chaos",
        }).encode()
        request = urllib.request.Request(
            f"{self.url}/fleet/hello", data=body,
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Resume any stalled workers (so they can die) and shut down."""
        for process in self.executor.processes:
            if process.pid in self._stopped and process.poll() is None:
                os.kill(process.pid, signal.SIGCONT)
        self._stopped.clear()
        self.executor.close()

    def __enter__(self) -> "FleetHarness":
        """Context-manager entry (returns the harness)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: :meth:`close` everything."""
        self.close()
