"""Clock-injected unit tests for the broker's lease state machine.

No HTTP, no subprocesses, no sleeping: a fake monotonic clock drives lease
expiry, so retry/exactly-once/cancellation semantics are tested exactly —
the chaos tests then show the same machine surviving real SIGKILLs.
"""

import pytest

from repro.api.fleet import (
    FleetBroker,
    FleetProtocolError,
    FleetSaturated,
)
from repro.api.schema import TaskResult, WorkerHello


class FakeClock:
    """A settable monotonic clock (``broker.lease`` never really waits)."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_broker(**kwargs):
    kwargs.setdefault("clock", FakeClock())
    kwargs.setdefault("lease_ttl_s", 10.0)
    broker = FleetBroker(**kwargs)
    broker.register(WorkerHello(worker_id="w1"))
    broker.register(WorkerHello(worker_id="w2"))
    return broker, kwargs["clock"]


def cells(tag, n):
    return [((f"{tag}-{i}", "m", "r"), {"outcome_key": f"key-{tag}-{i}"})
            for i in range(n)]


def ok_result(lease, worker="w1"):
    return TaskResult(lease_id=lease.lease_id, worker_id=worker, ok=True,
                      outcome_key=lease.cell["outcome_key"])


# ---------------------------------------------------------------------------
# Lease lifecycle
# ---------------------------------------------------------------------------


def test_lease_commit_drains_the_job():
    broker, _ = make_broker()
    broker.submit_cells("job", cells("a", 2))
    first = broker.lease("w1")
    second = broker.lease("w2")
    assert {first.cell["outcome_key"], second.cell["outcome_key"]} == \
        {"key-a-0", "key-a-1"}
    assert broker.complete(ok_result(first))
    assert broker.complete(ok_result(second, "w2"))
    events, done, error = broker.wait_job("job", timeout=0)
    assert done and error is None
    assert sorted(key for _, key, _ in events) == ["key-a-0", "key-a-1"]
    assert broker.counters["commits"] == 2


def test_unknown_worker_must_say_hello_first():
    broker, _ = make_broker()
    with pytest.raises(FleetProtocolError, match="hello"):
        broker.lease("ghost")


def test_lease_with_no_work_returns_none():
    broker, _ = make_broker()
    assert broker.lease("w1") is None


# ---------------------------------------------------------------------------
# Expiry, retry bounds, exactly-once
# ---------------------------------------------------------------------------


def test_expired_lease_requeues_with_attempt_bump():
    broker, clock = make_broker(lease_ttl_s=5.0)
    broker.submit_cells("job", cells("a", 1))
    first = broker.lease("w1")
    assert first.attempt == 1
    clock.now += 6.0                     # past the TTL, no heartbeat
    retry = broker.lease("w2")
    assert retry is not None
    assert retry.attempt == 2
    assert retry.cell == first.cell
    assert broker.counters["retries"] == 1
    # The late result from the dead first lease is dropped (exactly-once)…
    assert not broker.complete(ok_result(first))
    assert broker.counters["late_results"] == 1
    # …and only the live lease commits.
    assert broker.complete(ok_result(retry, "w2"))
    assert broker.counters["commits"] == 1
    _, done, error = broker.wait_job("job", timeout=0)
    assert done and error is None


def test_heartbeat_extends_the_lease():
    broker, clock = make_broker(lease_ttl_s=5.0)
    broker.submit_cells("job", cells("a", 1))
    lease = broker.lease("w1")
    for _ in range(4):
        clock.now += 4.0                 # would expire without heartbeats
        answer = broker.heartbeat("w1", [lease.lease_id])
        assert answer["directives"][lease.lease_id] == "keep"
    assert broker.complete(ok_result(lease))


def test_expired_then_reassigned_lease_heartbeat_says_abandon():
    broker, clock = make_broker(lease_ttl_s=5.0)
    broker.submit_cells("job", cells("a", 1))
    stale = broker.lease("w1")
    clock.now += 6.0
    live = broker.lease("w2")
    assert live is not None
    answer = broker.heartbeat("w1", [stale.lease_id])
    assert answer["directives"][stale.lease_id] == "abandon"


def test_retry_budget_bounds_failures():
    broker, clock = make_broker(lease_ttl_s=5.0, max_attempts=2)
    broker.submit_cells("job", cells("a", 1))
    for attempt in (1, 2):
        lease = broker.lease("w1")
        assert lease.attempt == attempt
        clock.now += 6.0                 # expire it
    # Third grant never happens: the cell failed out.
    assert broker.lease("w1") is None
    _, done, error = broker.wait_job("job", timeout=0)
    assert done
    assert "after 2 attempts" in error
    assert broker.counters["failures"] == 1


def test_worker_reported_failure_retries_then_fails():
    broker, _ = make_broker(max_attempts=2)
    broker.submit_cells("job", cells("a", 1))
    first = broker.lease("w1")
    broker.complete(TaskResult(lease_id=first.lease_id, worker_id="w1",
                               ok=False, error="ValueError: boom"))
    assert broker.counters["retries"] == 1
    second = broker.lease("w2")
    assert second.attempt == 2
    broker.complete(TaskResult(lease_id=second.lease_id, worker_id="w2",
                               ok=False, error="ValueError: boom"))
    _, done, error = broker.wait_job("job", timeout=0)
    assert done
    assert "ValueError: boom" in error


def test_duplicate_commit_is_dropped():
    broker, _ = make_broker()
    broker.submit_cells("job", cells("a", 1))
    lease = broker.lease("w1")
    assert broker.complete(ok_result(lease))
    assert not broker.complete(ok_result(lease))      # doubled commit
    assert broker.counters["commits"] == 1
    assert broker.counters["late_results"] == 1


# ---------------------------------------------------------------------------
# Cancellation drops queued cells
# ---------------------------------------------------------------------------


def test_cancel_drops_queued_cells_and_abandons_leases():
    broker, _ = make_broker()
    broker.submit_cells("job", cells("a", 4))
    leased = broker.lease("w1")
    dropped = broker.cancel_job("job")
    assert dropped == 3                  # the queued-but-unleased cells
    assert broker.counters["cancelled_cells"] == 3
    # Workers stop receiving this job's leases immediately…
    assert broker.lease("w2") is None
    # …the in-flight lease is told to abandon…
    answer = broker.heartbeat("w1", [leased.lease_id])
    assert answer["directives"][leased.lease_id] == "abandon"
    # …and its (now moot) result is dropped, not committed.
    assert not broker.complete(ok_result(leased))
    assert broker.counters["commits"] == 0
    _, done, _ = broker.wait_job("job", timeout=0)
    assert done                          # cancelled counts as terminal


def test_cancel_leaves_other_jobs_untouched():
    broker, _ = make_broker()
    broker.submit_cells("victim", cells("v", 2))
    broker.submit_cells("bystander", cells("b", 2))
    broker.cancel_job("victim")
    granted = {broker.lease("w1").job_tag, broker.lease("w1").job_tag}
    assert granted == {"bystander"}


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------


def test_submit_past_queue_depth_cap_is_refused():
    broker, _ = make_broker(max_queue_depth=3)
    broker.submit_cells("job", cells("a", 2))
    with pytest.raises(FleetSaturated) as excinfo:
        broker.submit_cells("job2", cells("b", 2))
    assert excinfo.value.queue_depth == 2
    assert excinfo.value.max_queue_depth == 3
    # The advisory admit check agrees with the hard cap.
    with pytest.raises(FleetSaturated):
        broker.admit(2)
    broker.admit(1)                      # exactly at the cap is fine


def test_leased_cells_count_toward_depth():
    broker, _ = make_broker(max_queue_depth=2)
    broker.submit_cells("job", cells("a", 2))
    broker.lease("w1")                   # queued → leased
    assert broker.depth() == 2           # still two cells in flight
    with pytest.raises(FleetSaturated):
        broker.admit(1)


def test_reused_job_tag_is_rejected():
    broker, _ = make_broker()
    broker.submit_cells("job", cells("a", 1))
    with pytest.raises(ValueError, match="already submitted"):
        broker.submit_cells("job", cells("b", 1))
