"""Fleet integration: compiled-backend workers match the serial python run.

The backend rides the lease's free-form ``cell`` payload (no wire-schema
change), so a grid dispatched with ``backend="compiled"`` runs its cycle
loops through the C kernel inside the worker subprocesses — and the
terminal report must still be byte-identical to ``SerialExecutor`` running
pure python.  This is the end-to-end form of the backend contract: same
numbers, different loop, across process boundaries.

Workers inherit the test environment, so ``REPRO_NO_CC=1`` turns these
workers into silent python fallbacks; the byte-identity assertion holds
either way, which is itself the degradation contract.  The compiled-only
test skips without a local toolchain.
"""

import pytest

from repro.harness.spec import run_experiment
from repro.uarch.backend import get_backend

from harness import CHAOS_WORKLOADS, FleetHarness, report_json, serial_report

needs_compiled = pytest.mark.skipif(
    not get_backend("compiled").available(),
    reason="no C toolchain on this runner")


@needs_compiled
def test_compiled_workers_match_serial_python(tmp_path):
    reference = serial_report(CHAOS_WORKLOADS)

    with FleetHarness(tmp_path / "cache") as harness:
        for _ in range(2):
            harness.spawn_worker()
        report = run_experiment(
            "fig8", suite="micro", workloads=list(CHAOS_WORKLOADS),
            scale=1, executor=harness.executor,
            cache=str(harness.cache_root), backend="compiled")
        counters = dict(harness.broker.counters)

    assert report_json(report) == report_json(reference)
    assert counters["commits"] == 8
    assert counters["failures"] == 0


def test_backend_threads_into_every_task():
    """``build_tasks`` stamps the requested backend on every task — the
    value :class:`~repro.api.fleet.FleetExecutor` copies into the lease's
    ``cell`` payload verbatim."""
    from repro.core import RenoConfig
    from repro.harness.executors import build_tasks
    from repro.uarch.config import MachineConfig
    from repro.workloads.base import get_workload

    tasks = build_tasks(
        [get_workload(name) for name in CHAOS_WORKLOADS],
        {"4wide": MachineConfig.default_4wide()},
        {"BASE": None, "RENO": RenoConfig.reno_default()},
        backend="compiled")
    assert tasks and all(task.backend == "compiled" for task in tasks)
