"""Unit and property tests for the sparse memory model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functional.memory import PAGE_SIZE, Memory


def test_untouched_memory_reads_zero():
    memory = Memory()
    assert memory.read(0x1234, 8) == 0
    assert memory.read_byte(0) == 0
    assert memory.touched_pages() == 0


def test_byte_write_read_round_trip():
    memory = Memory()
    memory.write_byte(10, 0xAB)
    assert memory.read_byte(10) == 0xAB
    assert memory.read_byte(11) == 0


def test_word_write_is_little_endian():
    memory = Memory()
    memory.write_word(0x100, 0x0102030405060708)
    assert memory.read_byte(0x100) == 0x08
    assert memory.read_byte(0x107) == 0x01
    assert memory.read_word(0x100) == 0x0102030405060708


def test_cross_page_access():
    memory = Memory()
    address = PAGE_SIZE - 4
    memory.write(address, 8, 0x1122334455667788)
    assert memory.read(address, 8) == 0x1122334455667788
    assert memory.touched_pages() == 2


def test_initial_contents_constructor():
    memory = Memory({0x10: 0xFF, 0x11: 0x01})
    assert memory.read(0x10, 2) == 0x01FF


def test_copy_is_independent():
    memory = Memory()
    memory.write_word(0, 42)
    clone = memory.copy()
    clone.write_word(0, 7)
    assert memory.read_word(0) == 42
    assert clone.read_word(0) == 7


def test_equality_ignores_untouched_zero_pages():
    a = Memory()
    b = Memory()
    b.write_word(0x5000, 0)  # touches a page but stays all-zero
    assert a == b
    b.write_word(0x5000, 1)
    assert a != b


@settings(max_examples=100)
@given(
    address=st.integers(min_value=0, max_value=1 << 32),
    value=st.integers(min_value=0, max_value=(1 << 64) - 1),
    size=st.sampled_from([1, 4, 8]),
)
def test_write_then_read_returns_truncated_value(address, value, size):
    memory = Memory()
    memory.write(address, size, value)
    assert memory.read(address, size) == value & ((1 << (8 * size)) - 1)


@settings(max_examples=100)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4096 * 3),
            st.integers(min_value=0, max_value=255),
        ),
        max_size=30,
    )
)
def test_memory_matches_reference_dict(writes):
    memory = Memory()
    reference: dict[int, int] = {}
    for address, value in writes:
        memory.write_byte(address, value)
        reference[address] = value
    for address, value in reference.items():
        assert memory.read_byte(address) == value
