"""Unit tests for the functional simulator."""

import pytest

from repro.functional.simulator import ExecutionLimitExceeded, FunctionalSimulator
from repro.functional.trace import mix_statistics
from repro.isa.assembler import Assembler
from repro.isa.program import STACK_BASE
from repro.isa.registers import RegisterNames as R


def run(asm: Assembler, **kwargs):
    return FunctionalSimulator(asm.assemble(), **kwargs).run()


def test_arithmetic_program():
    asm = Assembler("arith")
    asm.li(R.T0, 5)
    asm.li(R.T1, 7)
    asm.add(R.T2, R.T0, R.T1)
    asm.mul(R.T3, R.T2, R.T2)
    asm.halt()
    result = run(asm)
    assert result.halted
    assert result.state.read(R.T2) == 12
    assert result.state.read(R.T3) == 144


def test_large_constant_via_ldah_pair():
    asm = Assembler("bigconst")
    asm.li(R.T0, 0x12345678)
    asm.li(R.T1, -123456)
    asm.halt()
    result = run(asm)
    assert result.state.read(R.T0) == 0x12345678
    assert result.state.read(R.T1) == (-123456) & ((1 << 64) - 1)


def test_loop_sums_array():
    asm = Assembler("sum")
    asm.word_array("values", [3, 1, 4, 1, 5, 9, 2, 6])
    asm.la(R.A0, "values")
    asm.li(R.T0, 8)
    asm.li(R.V0, 0)
    asm.label("loop")
    asm.ld(R.T1, 0, R.A0)
    asm.add(R.V0, R.V0, R.T1)
    asm.addi(R.A0, R.A0, 8)
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "loop")
    asm.halt()
    result = run(asm)
    assert result.state.read(R.V0) == 31


def test_store_then_load_round_trip():
    asm = Assembler("mem")
    asm.zeros("buffer", 4)
    asm.la(R.A0, "buffer")
    asm.li(R.T0, 0x7F)
    asm.st(R.T0, 8, R.A0)
    asm.ld(R.T1, 8, R.A0)
    asm.stw(R.T0, 16, R.A0)
    asm.ldw(R.T2, 16, R.A0)
    asm.stb(R.T0, 24, R.A0)
    asm.ldbu(R.T3, 24, R.A0)
    asm.halt()
    result = run(asm)
    assert result.state.read(R.T1) == 0x7F
    assert result.state.read(R.T2) == 0x7F
    assert result.state.read(R.T3) == 0x7F


def test_signed_word_load_sign_extends():
    asm = Assembler("sext")
    asm.zeros("buffer", 1)
    asm.la(R.A0, "buffer")
    asm.li(R.T0, -1)
    asm.stw(R.T0, 0, R.A0)
    asm.ldw(R.T1, 0, R.A0)
    asm.halt()
    result = run(asm)
    assert result.state.read(R.T1) == (1 << 64) - 1


def test_call_and_return():
    asm = Assembler("call")
    asm.li(R.A0, 20)
    asm.jsr("double")
    asm.mov(R.S0, R.V0)
    asm.halt()
    asm.label("double")
    asm.add(R.V0, R.A0, R.A0)
    asm.ret()
    result = run(asm)
    assert result.state.read(R.S0) == 40


def test_nested_calls_with_stack_frames():
    asm = Assembler("nested")
    asm.li(R.A0, 3)
    asm.jsr("outer")
    asm.halt()
    asm.label("outer")
    asm.prologue(16)
    asm.addi(R.A0, R.A0, 1)
    asm.jsr("inner")
    asm.epilogue(16)
    asm.label("inner")
    asm.add(R.V0, R.A0, R.A0)
    asm.ret()
    result = run(asm)
    assert result.state.read(R.V0) == 8
    # the stack pointer must be restored
    assert result.state.read(R.SP) == STACK_BASE


def test_conditional_branches():
    asm = Assembler("branches")
    asm.li(R.T0, 10)
    asm.li(R.V0, 0)
    asm.cmplti(R.T1, R.T0, 20)
    asm.beq(R.T1, "skip")
    asm.addi(R.V0, R.V0, 1)
    asm.label("skip")
    asm.cmplti(R.T1, R.T0, 5)
    asm.bne(R.T1, "skip2")
    asm.addi(R.V0, R.V0, 2)
    asm.label("skip2")
    asm.halt()
    result = run(asm)
    assert result.state.read(R.V0) == 3


def test_trace_records_values_and_addresses():
    asm = Assembler("trace")
    asm.zeros("buf", 1)
    asm.la(R.A0, "buf")
    asm.li(R.T0, 99)
    asm.st(R.T0, 0, R.A0)
    asm.ld(R.T1, 0, R.A0)
    asm.halt()
    result = run(asm)
    store = next(d for d in result.trace if d.instruction.is_store)
    load = next(d for d in result.trace if d.instruction.is_load)
    assert store.eff_addr == load.eff_addr
    assert store.store_value == 99
    assert load.result == 99
    # sequence numbers are dense and ordered
    assert [d.seq for d in result.trace] == list(range(len(result.trace)))


def test_trace_next_pc_chains():
    asm = Assembler("chain")
    asm.li(R.T0, 2)
    asm.label("loop")
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "loop")
    asm.halt()
    result = run(asm)
    for earlier, later in zip(result.trace, result.trace[1:]):
        assert earlier.next_pc == later.pc


def test_branch_outcomes_recorded():
    asm = Assembler("taken")
    asm.li(R.T0, 2)
    asm.label("loop")
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "loop")
    asm.halt()
    result = run(asm)
    branches = [d for d in result.trace if d.instruction.is_cond_branch]
    assert [d.taken for d in branches] == [True, False]
    assert branches[0].target_pc == branches[0].next_pc


def test_infinite_loop_hits_budget():
    asm = Assembler("spin")
    asm.label("forever")
    asm.br("forever")
    asm.halt()
    with pytest.raises(ExecutionLimitExceeded):
        FunctionalSimulator(asm.assemble(), max_instructions=1000).run()


def test_zero_register_cannot_be_written():
    asm = Assembler("zero")
    asm.li(R.ZERO, 55)
    asm.addi(R.T0, R.ZERO, 1)
    asm.halt()
    result = run(asm)
    assert result.state.read(R.ZERO) == 0
    assert result.state.read(R.T0) == 1


def test_mix_statistics_classification():
    asm = Assembler("mix")
    asm.zeros("buf", 2)
    asm.la(R.A0, "buf")      # addi (reg-imm add) -- may be 1 or 2 instrs
    asm.mov(R.T0, R.A0)      # move
    asm.ld(R.T1, 0, R.A0)    # load
    asm.st(R.T1, 8, R.A0)    # store
    asm.add(R.T2, R.T1, R.T1)  # other alu
    asm.beq(R.ZERO, "end")   # branch
    asm.label("end")
    asm.halt()
    result = run(asm)
    mix = mix_statistics(result.trace)
    assert mix.total == result.dynamic_count
    assert mix.moves == 1
    assert mix.loads == 1
    assert mix.stores == 1
    assert mix.branches == 1
    assert mix.other_alu == 1
    assert mix.reg_imm_adds >= 1
    assert 0.0 < mix.move_fraction < 1.0
